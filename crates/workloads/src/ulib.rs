//! User-space synchronization library: futex-backed primitives as
//! resumable *flows*.
//!
//! Real applications on the paper's systems synchronize through pthread
//! primitives: atomic operations on shared words with `futex` for
//! sleeping. Programs in this reproduction are state machines, so the
//! primitives come as [`Flow`]s — sub-state-machines a program drives from
//! inside its own `step`:
//!
//! - [`BarrierWait`] — sense-reversing counter barrier (generation word +
//!   arrival counter, wake-all on the last arrival);
//! - [`MutexLock`] / [`MutexUnlock`] — the classic three-state futex mutex
//!   (0 free, 1 locked, 2 locked-contended);
//! - [`JoinWait`] / [`JoinSignal`] — completion counting (thread join).
//!
//! All words are 8-byte slots inside memory the program mapped; by
//! convention they are touched *only* through `Op::AtomicRmw` / futexes
//! (see DESIGN.md §Distributed futex).

use popcorn_kernel::program::{FutexOp, Op, Resume, RmwOp, SysResult};
use popcorn_kernel::types::VAddr;

/// What a flow wants next: an operation to execute, or completion.
#[derive(Debug)]
pub enum Poll {
    /// Execute this and feed the result back.
    Op(Op),
    /// The primitive completed.
    Done,
}

/// A resumable synchronization primitive.
pub trait Flow: std::fmt::Debug + Send {
    /// Advances given the previous op's result (`Resume::Start` first).
    fn step(&mut self, resume: Resume) -> Poll;
}

/// Shared-memory layout of a barrier: an arrival counter and a generation
/// word, in two adjacent slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Barrier {
    /// Arrival counter word.
    pub count: VAddr,
    /// Generation word (incremented each episode; waiters sleep on it).
    pub gen: VAddr,
    /// Parties per episode.
    pub n: u64,
}

impl Barrier {
    /// Lays a barrier out at `base` (16 bytes).
    pub fn at(base: VAddr, n: u64) -> Self {
        assert!(n > 0, "barrier needs at least one party");
        Barrier {
            count: base,
            gen: base.add(8),
            n,
        }
    }
}

/// One thread's passage through a [`Barrier`].
#[derive(Debug)]
pub struct BarrierWait {
    b: Barrier,
    my_gen: u64,
    state: u8,
}

impl BarrierWait {
    /// Begins a barrier episode.
    pub fn new(b: Barrier) -> Self {
        BarrierWait {
            b,
            my_gen: 0,
            state: 0,
        }
    }
}

impl Flow for BarrierWait {
    fn step(&mut self, resume: Resume) -> Poll {
        match self.state {
            // Read the current generation (via a no-op RMW).
            0 => {
                self.state = 1;
                Poll::Op(Op::AtomicRmw(self.b.gen, RmwOp::Add(0)))
            }
            1 => {
                let Resume::Value(g) = resume else {
                    panic!("barrier expected generation value, got {resume:?}");
                };
                self.my_gen = g;
                self.state = 2;
                Poll::Op(Op::AtomicRmw(self.b.count, RmwOp::Add(1)))
            }
            2 => {
                let Resume::Value(old) = resume else {
                    panic!("barrier expected counter value, got {resume:?}");
                };
                if old == self.b.n - 1 {
                    // Last arrival: reset the counter...
                    self.state = 3;
                    Poll::Op(Op::AtomicRmw(self.b.count, RmwOp::Xchg(0)))
                } else {
                    self.state = 5;
                    Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(
                        FutexOp::Wait {
                            uaddr: self.b.gen,
                            expected: self.my_gen,
                        },
                    )))
                }
            }
            // ...bump the generation...
            3 => {
                self.state = 4;
                Poll::Op(Op::AtomicRmw(self.b.gen, RmwOp::Add(1)))
            }
            // ...and wake everyone.
            4 => {
                self.state = 6;
                Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(
                    FutexOp::Wake {
                        uaddr: self.b.gen,
                        count: u32::MAX,
                    },
                )))
            }
            // Waiter woke (or the wait was stale): re-check the generation.
            5 => {
                debug_assert!(matches!(resume, Resume::Sys(_)));
                self.state = 7;
                Poll::Op(Op::AtomicRmw(self.b.gen, RmwOp::Add(0)))
            }
            7 => {
                let Resume::Value(g) = resume else {
                    panic!("barrier expected generation value, got {resume:?}");
                };
                if g != self.my_gen {
                    Poll::Done
                } else {
                    self.state = 5;
                    Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(
                        FutexOp::Wait {
                            uaddr: self.b.gen,
                            expected: self.my_gen,
                        },
                    )))
                }
            }
            6 => {
                debug_assert!(matches!(resume, Resume::Sys(SysResult::Val(_))));
                Poll::Done
            }
            s => panic!("barrier in impossible state {s}"),
        }
    }
}

/// A two-level (combining) barrier: threads first meet in per-group local
/// barriers; the last arrival of each group represents it at a global
/// barrier of `groups` parties, then releases its group.
///
/// Grouping threads by the kernel they run on turns all but one
/// synchronization op per kernel per episode into kernel-local traffic —
/// the classic NUMA/multikernel barrier optimization. On the replicated
/// kernel this pays off when synchronization words are homed where they
/// are used (see `PopcornParams::sync_first_touch_homing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierBarrier {
    /// The top-level barrier among group leaders.
    pub global: Barrier,
    /// Base address of the per-group barriers (64 bytes apart).
    pub locals_base: VAddr,
    /// Number of groups.
    pub groups: u64,
}

impl HierBarrier {
    /// Lays out a hierarchical barrier at `base`: the global barrier in the
    /// first 64-byte slot, group `g`'s local barrier in slot `1 + g`.
    /// Requires `(groups + 1) * 64` bytes at `base`.
    pub fn at(base: VAddr, groups: u64) -> Self {
        assert!(groups > 0, "need at least one group");
        HierBarrier {
            global: Barrier::at(base, groups),
            locals_base: base.add(64),
            groups,
        }
    }

    /// The local barrier of group `g` with `parties` members.
    pub fn local(&self, g: u64, parties: u64) -> Barrier {
        assert!(g < self.groups, "group {g} out of range");
        Barrier::at(self.locals_base.add(64 * g), parties)
    }
}

/// One thread's passage through a [`HierBarrier`].
#[derive(Debug)]
pub struct HierBarrierWait {
    local: Barrier,
    global: Barrier,
    my_gen: u64,
    state: u8,
    inner: Option<BarrierWait>,
}

impl HierBarrierWait {
    /// Begins an episode for a member of group `g` (which has `parties`
    /// members).
    pub fn new(h: HierBarrier, g: u64, parties: u64) -> Self {
        HierBarrierWait {
            local: h.local(g, parties),
            global: h.global,
            my_gen: 0,
            state: 0,
            inner: None,
        }
    }
}

impl Flow for HierBarrierWait {
    fn step(&mut self, resume: Resume) -> Poll {
        use popcorn_kernel::program::SyscallReq;
        match self.state {
            // Read the local generation first (gate for the wait).
            0 => {
                self.state = 1;
                Poll::Op(Op::AtomicRmw(self.local.gen, RmwOp::Add(0)))
            }
            1 => {
                let Resume::Value(g) = resume else {
                    panic!("hier barrier expected generation, got {resume:?}");
                };
                self.my_gen = g;
                self.state = 2;
                Poll::Op(Op::AtomicRmw(self.local.count, RmwOp::Add(1)))
            }
            2 => {
                let Resume::Value(old) = resume else {
                    panic!("hier barrier expected counter, got {resume:?}");
                };
                if old == self.local.n - 1 {
                    // Group leader: cross the global barrier.
                    let mut inner = BarrierWait::new(self.global);
                    let first = inner.step(Resume::Start);
                    self.inner = Some(inner);
                    self.state = 3;
                    match first {
                        Poll::Op(op) => Poll::Op(op),
                        Poll::Done => unreachable!("global barrier needs ops"),
                    }
                } else {
                    self.state = 6;
                    Poll::Op(Op::Syscall(SyscallReq::Futex(FutexOp::Wait {
                        uaddr: self.local.gen,
                        expected: self.my_gen,
                    })))
                }
            }
            // Leader driving the global barrier.
            3 => match self.inner.as_mut().expect("inner set").step(resume) {
                Poll::Op(op) => Poll::Op(op),
                Poll::Done => {
                    // Release the local group: reset count...
                    self.state = 4;
                    Poll::Op(Op::AtomicRmw(self.local.count, RmwOp::Xchg(0)))
                }
            },
            4 => {
                self.state = 5;
                Poll::Op(Op::AtomicRmw(self.local.gen, RmwOp::Add(1)))
            }
            5 => {
                self.state = 8;
                Poll::Op(Op::Syscall(SyscallReq::Futex(FutexOp::Wake {
                    uaddr: self.local.gen,
                    count: u32::MAX,
                })))
            }
            // Non-leader wait loop on the local generation.
            6 => {
                debug_assert!(matches!(resume, Resume::Sys(_)));
                self.state = 7;
                Poll::Op(Op::AtomicRmw(self.local.gen, RmwOp::Add(0)))
            }
            7 => {
                let Resume::Value(g) = resume else {
                    panic!("hier barrier expected generation, got {resume:?}");
                };
                if g != self.my_gen {
                    Poll::Done
                } else {
                    self.state = 6;
                    Poll::Op(Op::Syscall(SyscallReq::Futex(FutexOp::Wait {
                        uaddr: self.local.gen,
                        expected: self.my_gen,
                    })))
                }
            }
            8 => Poll::Done,
            s => panic!("hier barrier in impossible state {s}"),
        }
    }
}

/// Acquires a three-state futex mutex (0 free, 1 locked, 2 contended).
#[derive(Debug)]
pub struct MutexLock {
    word: VAddr,
    state: u8,
}

impl MutexLock {
    /// Begins an acquisition of the mutex at `word`.
    pub fn new(word: VAddr) -> Self {
        MutexLock { word, state: 0 }
    }
}

impl Flow for MutexLock {
    fn step(&mut self, resume: Resume) -> Poll {
        match self.state {
            0 => {
                self.state = 1;
                Poll::Op(Op::AtomicRmw(
                    self.word,
                    RmwOp::Cas {
                        expected: 0,
                        new: 1,
                    },
                ))
            }
            1 => {
                let Resume::Value(old) = resume else {
                    panic!("mutex expected CAS result, got {resume:?}");
                };
                if old == 0 {
                    return Poll::Done; // fast path
                }
                // Contended: advertise a waiter, then sleep.
                self.state = 2;
                Poll::Op(Op::AtomicRmw(self.word, RmwOp::Xchg(2)))
            }
            2 => {
                let Resume::Value(old) = resume else {
                    panic!("mutex expected Xchg result, got {resume:?}");
                };
                if old == 0 {
                    // It was free when we stamped 2: we own it.
                    return Poll::Done;
                }
                self.state = 3;
                Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(
                    FutexOp::Wait {
                        uaddr: self.word,
                        expected: 2,
                    },
                )))
            }
            3 => {
                debug_assert!(matches!(resume, Resume::Sys(_)));
                // Woken or stale: retry the contended exchange.
                self.state = 2;
                Poll::Op(Op::AtomicRmw(self.word, RmwOp::Xchg(2)))
            }
            s => panic!("mutex lock in impossible state {s}"),
        }
    }
}

/// Releases a futex mutex acquired by [`MutexLock`].
#[derive(Debug)]
pub struct MutexUnlock {
    word: VAddr,
    state: u8,
}

impl MutexUnlock {
    /// Begins the release of the mutex at `word`.
    pub fn new(word: VAddr) -> Self {
        MutexUnlock { word, state: 0 }
    }
}

impl Flow for MutexUnlock {
    fn step(&mut self, resume: Resume) -> Poll {
        match self.state {
            0 => {
                self.state = 1;
                Poll::Op(Op::AtomicRmw(self.word, RmwOp::Xchg(0)))
            }
            1 => {
                let Resume::Value(old) = resume else {
                    panic!("mutex expected Xchg result, got {resume:?}");
                };
                debug_assert!(old != 0, "unlocking a free mutex");
                if old == 2 {
                    self.state = 2;
                    Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(
                        FutexOp::Wake {
                            uaddr: self.word,
                            count: 1,
                        },
                    )))
                } else {
                    Poll::Done
                }
            }
            2 => {
                debug_assert!(matches!(resume, Resume::Sys(_)));
                Poll::Done
            }
            s => panic!("mutex unlock in impossible state {s}"),
        }
    }
}

/// Signals completion on a join counter: increment, then wake waiters.
#[derive(Debug)]
pub struct JoinSignal {
    word: VAddr,
    state: u8,
}

impl JoinSignal {
    /// Begins a completion signal on the counter at `word`.
    pub fn new(word: VAddr) -> Self {
        JoinSignal { word, state: 0 }
    }
}

impl Flow for JoinSignal {
    fn step(&mut self, resume: Resume) -> Poll {
        match self.state {
            0 => {
                self.state = 1;
                Poll::Op(Op::AtomicRmw(self.word, RmwOp::Add(1)))
            }
            1 => {
                debug_assert!(matches!(resume, Resume::Value(_)));
                self.state = 2;
                Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(
                    FutexOp::Wake {
                        uaddr: self.word,
                        count: u32::MAX,
                    },
                )))
            }
            2 => Poll::Done,
            s => panic!("join signal in impossible state {s}"),
        }
    }
}

/// Waits until a join counter reaches `target`.
#[derive(Debug)]
pub struct JoinWait {
    word: VAddr,
    target: u64,
    state: u8,
    seen: u64,
}

impl JoinWait {
    /// Begins waiting for the counter at `word` to reach `target`.
    pub fn new(word: VAddr, target: u64) -> Self {
        JoinWait {
            word,
            target,
            state: 0,
            seen: 0,
        }
    }
}

impl Flow for JoinWait {
    fn step(&mut self, resume: Resume) -> Poll {
        match self.state {
            0 => {
                self.state = 1;
                Poll::Op(Op::AtomicRmw(self.word, RmwOp::Add(0)))
            }
            1 => {
                let Resume::Value(v) = resume else {
                    panic!("join expected counter value, got {resume:?}");
                };
                if v >= self.target {
                    return Poll::Done;
                }
                self.seen = v;
                self.state = 2;
                Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(
                    FutexOp::Wait {
                        uaddr: self.word,
                        expected: self.seen,
                    },
                )))
            }
            2 => {
                debug_assert!(matches!(resume, Resume::Sys(_)));
                self.state = 1;
                Poll::Op(Op::AtomicRmw(self.word, RmwOp::Add(0)))
            }
            s => panic!("join wait in impossible state {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popcorn_kernel::futex::{FutexTable, Waiter};
    use popcorn_kernel::types::{GroupId, Tid};
    use popcorn_msg::KernelId;
    use std::collections::HashMap;

    /// A miniature cooperative executor: drives a set of flows against a
    /// real `FutexTable`, round-robin, handling AtomicRmw and futex
    /// syscalls exactly as an OS model would. Lets us unit-test the
    /// primitives' protocol logic without a simulator.
    struct MiniExec {
        table: FutexTable,
        group: GroupId,
        flows: Vec<(u32, Box<dyn Flow>)>,
        resumes: HashMap<u32, Resume>,
        blocked: HashMap<u32, VAddr>,
        done: Vec<u32>,
    }

    impl MiniExec {
        fn new(flows: Vec<Box<dyn Flow>>) -> Self {
            MiniExec {
                table: FutexTable::new(),
                group: GroupId(Tid::new(KernelId(0), 1)),
                resumes: flows
                    .iter()
                    .enumerate()
                    .map(|(i, _)| (i as u32, Resume::Start))
                    .collect(),
                flows: flows
                    .into_iter()
                    .enumerate()
                    .map(|(i, f)| (i as u32, f))
                    .collect(),
                blocked: HashMap::new(),
                done: Vec::new(),
            }
        }

        /// Runs until all flows complete (panics after too many rounds —
        /// a deadlocked primitive).
        fn run(&mut self) {
            self.run_with_order(None);
        }

        /// Like [`MiniExec::run`], but shuffling the per-round scheduling
        /// order with the given seed — an adversarial-interleaving mode
        /// for property tests.
        fn run_with_order(&mut self, seed: Option<u64>) {
            let mut rng = seed.map(popcorn_sim::SimRng::new);
            for _round in 0..100_000 {
                if self.flows.iter().all(|(id, _)| self.done.contains(id)) {
                    return;
                }
                let mut ids: Vec<u32> = self.flows.iter().map(|(id, _)| *id).collect();
                if let Some(rng) = rng.as_mut() {
                    rng.shuffle(&mut ids);
                }
                for id in ids {
                    if self.done.contains(&id) || self.blocked.contains_key(&id) {
                        continue;
                    }
                    self.step_one(id);
                }
                assert!(
                    !self
                        .flows
                        .iter()
                        .all(|(id, _)| self.blocked.contains_key(id) || self.done.contains(id))
                        || self.flows.iter().all(|(id, _)| self.done.contains(id)),
                    "all live flows blocked: deadlock"
                );
            }
            panic!("executor did not converge");
        }

        fn step_one(&mut self, id: u32) {
            let resume = self.resumes.insert(id, Resume::Done).expect("has resume");
            let flow = &mut self
                .flows
                .iter_mut()
                .find(|(i, _)| *i == id)
                .expect("flow exists")
                .1;
            match flow.step(resume) {
                Poll::Done => {
                    self.done.push(id);
                }
                Poll::Op(Op::AtomicRmw(addr, op)) => {
                    let old = self.table.rmw(self.group, addr, op);
                    self.resumes.insert(id, Resume::Value(old));
                }
                Poll::Op(Op::Syscall(popcorn_kernel::program::SyscallReq::Futex(op))) => match op {
                    FutexOp::Wait { uaddr, expected } => {
                        let w = Waiter {
                            kernel: KernelId(0),
                            tid: Tid::new(KernelId(0), id),
                        };
                        if self.table.wait_if(self.group, uaddr, expected, w) {
                            self.blocked.insert(id, uaddr);
                        } else {
                            self.resumes.insert(
                                id,
                                Resume::Sys(SysResult::Err(popcorn_kernel::types::Errno::Again)),
                            );
                        }
                    }
                    FutexOp::Wake { uaddr, count } => {
                        let woken = self.table.wake(self.group, uaddr, count);
                        for w in &woken {
                            let wid = w.tid.local();
                            self.blocked.remove(&wid);
                            self.resumes.insert(wid, Resume::Sys(SysResult::Val(0)));
                        }
                        self.resumes
                            .insert(id, Resume::Sys(SysResult::Val(woken.len() as u64)));
                    }
                },
                Poll::Op(other) => panic!("unexpected op from sync flow: {other:?}"),
            }
        }
    }

    const BASE: VAddr = VAddr(0x7f00_0000_0000);

    #[test]
    fn barrier_releases_all_parties() {
        for n in [1u64, 2, 3, 8, 16] {
            let b = Barrier::at(BASE, n);
            let flows: Vec<Box<dyn Flow>> = (0..n)
                .map(|_| Box::new(BarrierWait::new(b)) as Box<dyn Flow>)
                .collect();
            let mut exec = MiniExec::new(flows);
            exec.run();
            assert_eq!(exec.done.len(), n as usize, "n={n}");
            // Counter reset for the next episode.
            assert_eq!(exec.table.read(exec.group, b.count), 0);
            assert_eq!(exec.table.read(exec.group, b.gen), 1);
        }
    }

    #[test]
    fn barrier_is_reusable_across_episodes() {
        let n = 4u64;
        let b = Barrier::at(BASE, n);
        let mut table_gen = 0;
        let mut exec = MiniExec::new(
            (0..n)
                .map(|_| Box::new(BarrierWait::new(b)) as Box<dyn Flow>)
                .collect(),
        );
        exec.run();
        table_gen += 1;
        assert_eq!(exec.table.read(exec.group, b.gen), table_gen);
        // Second episode reusing the same words.
        let mut exec2 = MiniExec::new(
            (0..n)
                .map(|_| Box::new(BarrierWait::new(b)) as Box<dyn Flow>)
                .collect(),
        );
        exec2.table = exec.table;
        exec2.run();
        assert_eq!(exec2.table.read(exec2.group, b.gen), table_gen + 1);
    }

    /// A flow that locks, bumps a plain shared cell (simulated by the test
    /// through the futex table as a word, which is fine here), unlocks.
    #[derive(Debug)]
    struct CriticalSection {
        cell: VAddr,
        phase: u8,
        lock: MutexLock,
        unlock: MutexUnlock,
    }

    impl CriticalSection {
        fn new(word: VAddr, cell: VAddr) -> Self {
            CriticalSection {
                cell,
                phase: 0,
                lock: MutexLock::new(word),
                unlock: MutexUnlock::new(word),
            }
        }
    }

    impl Flow for CriticalSection {
        fn step(&mut self, resume: Resume) -> Poll {
            match self.phase {
                0 => match self.lock.step(resume) {
                    Poll::Op(op) => Poll::Op(op),
                    Poll::Done => {
                        self.phase = 1;
                        Poll::Op(Op::AtomicRmw(self.cell, RmwOp::Add(1)))
                    }
                },
                1 => {
                    self.phase = 2;
                    self.unlock.step(Resume::Start)
                }
                2 => match self.unlock.step(resume) {
                    Poll::Op(op) => Poll::Op(op),
                    Poll::Done => Poll::Done,
                },
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn mutex_serializes_and_counts_exactly() {
        let lock_word = BASE;
        let cell = BASE.add(64);
        let n = 12;
        let flows: Vec<Box<dyn Flow>> = (0..n)
            .map(|_| Box::new(CriticalSection::new(lock_word, cell)) as Box<dyn Flow>)
            .collect();
        let mut exec = MiniExec::new(flows);
        exec.run();
        assert_eq!(exec.table.read(exec.group, cell), n);
        // Lock is free at the end.
        assert_eq!(exec.table.read(exec.group, lock_word), 0);
    }

    #[test]
    fn join_wait_blocks_until_target() {
        let word = BASE;
        let mut flows: Vec<Box<dyn Flow>> = vec![Box::new(JoinWait::new(word, 3))];
        for _ in 0..3 {
            flows.push(Box::new(JoinSignal::new(word)));
        }
        let mut exec = MiniExec::new(flows);
        exec.run();
        assert_eq!(exec.table.read(exec.group, word), 3);
    }

    #[test]
    fn join_wait_with_zero_target_completes_immediately() {
        let mut exec = MiniExec::new(vec![Box::new(JoinWait::new(BASE, 0))]);
        exec.run();
        assert_eq!(exec.done.len(), 1);
    }

    #[test]
    #[should_panic(expected = "barrier needs at least one party")]
    fn zero_party_barrier_rejected() {
        Barrier::at(BASE, 0);
    }

    #[test]
    fn hier_barrier_releases_all_parties_across_groups() {
        // 3 groups of uneven sizes (3, 2, 1 members).
        let sizes = [3u64, 2, 1];
        let h = HierBarrier::at(BASE, sizes.len() as u64);
        let mut flows: Vec<Box<dyn Flow>> = Vec::new();
        for (g, &n) in sizes.iter().enumerate() {
            for _ in 0..n {
                flows.push(Box::new(HierBarrierWait::new(h, g as u64, n)));
            }
        }
        let total = flows.len();
        let mut exec = MiniExec::new(flows);
        exec.run();
        assert_eq!(exec.done.len(), total);
        // Every level reset/advanced for the next episode.
        assert_eq!(exec.table.read(exec.group, h.global.count), 0);
        assert_eq!(exec.table.read(exec.group, h.global.gen), 1);
        for (g, &n) in sizes.iter().enumerate() {
            let local = h.local(g as u64, n);
            assert_eq!(exec.table.read(exec.group, local.count), 0);
            assert_eq!(exec.table.read(exec.group, local.gen), 1);
        }
    }

    #[test]
    fn hier_barrier_is_reusable() {
        let h = HierBarrier::at(BASE, 2);
        for episode in 1..=3u64 {
            let mut flows: Vec<Box<dyn Flow>> = Vec::new();
            for g in 0..2u64 {
                for _ in 0..2 {
                    flows.push(Box::new(HierBarrierWait::new(h, g, 2)));
                }
            }
            let mut exec = MiniExec::new(flows);
            if episode > 1 {
                exec.table = PREV.with(|p| p.borrow_mut().take().expect("previous table"));
            }
            exec.run();
            assert_eq!(exec.table.read(exec.group, h.global.gen), episode);
            PREV.with(|p| *p.borrow_mut() = Some(std::mem::take(&mut exec.table)));
        }
    }

    thread_local! {
        static PREV: std::cell::RefCell<Option<FutexTable>> =
            const { std::cell::RefCell::new(None) };
    }

    #[test]
    fn hier_barrier_single_group_degenerates_to_flat() {
        let h = HierBarrier::at(BASE, 1);
        let flows: Vec<Box<dyn Flow>> = (0..4)
            .map(|_| Box::new(HierBarrierWait::new(h, 0, 4)) as Box<dyn Flow>)
            .collect();
        let mut exec = MiniExec::new(flows);
        exec.run();
        assert_eq!(exec.done.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hier_barrier_rejects_bad_group() {
        HierBarrier::at(BASE, 2).local(2, 1);
    }

    mod props {
        //! Randomized interleaving tests driven by the deterministic
        //! [`SimRng`] (the build is offline, so no external
        //! property-testing framework).
        use super::*;
        use popcorn_sim::SimRng;

        /// Barriers release everyone under adversarial scheduling orders,
        /// for any party count.
        #[test]
        fn barrier_correct_under_random_interleavings() {
            let mut rng = SimRng::new(0x5EED_5001);
            for _ in 0..128 {
                let n = rng.range_u64(1, 12);
                let seed = rng.next_u64();
                let b = Barrier::at(BASE, n);
                let flows: Vec<Box<dyn Flow>> = (0..n)
                    .map(|_| Box::new(BarrierWait::new(b)) as Box<dyn Flow>)
                    .collect();
                let mut exec = MiniExec::new(flows);
                exec.run_with_order(Some(seed));
                assert_eq!(exec.done.len() as u64, n);
                assert_eq!(exec.table.read(exec.group, b.count), 0);
                assert_eq!(exec.table.read(exec.group, b.gen), 1);
            }
        }

        /// The mutex never loses an increment under adversarial
        /// scheduling.
        #[test]
        fn mutex_counts_exactly_under_random_interleavings() {
            let mut rng = SimRng::new(0x5EED_5002);
            for _ in 0..128 {
                let n = rng.range_u64(1, 10);
                let seed = rng.next_u64();
                let lock_word = BASE;
                let cell = BASE.add(64);
                let flows: Vec<Box<dyn Flow>> = (0..n)
                    .map(|_| Box::new(CriticalSection::new(lock_word, cell)) as Box<dyn Flow>)
                    .collect();
                let mut exec = MiniExec::new(flows);
                exec.run_with_order(Some(seed));
                assert_eq!(exec.table.read(exec.group, cell), n);
                assert_eq!(exec.table.read(exec.group, lock_word), 0);
            }
        }

        /// Hierarchical barriers with arbitrary group shapes release every
        /// member under adversarial scheduling.
        #[test]
        fn hier_barrier_correct_under_random_interleavings() {
            let mut rng = SimRng::new(0x5EED_5003);
            for _ in 0..128 {
                let groups = rng.range_u64(1, 5) as usize;
                let sizes: Vec<u64> = (0..groups).map(|_| rng.range_u64(1, 5)).collect();
                let seed = rng.next_u64();
                let h = HierBarrier::at(BASE, sizes.len() as u64);
                let mut flows: Vec<Box<dyn Flow>> = Vec::new();
                for (g, &n) in sizes.iter().enumerate() {
                    for _ in 0..n {
                        flows.push(Box::new(HierBarrierWait::new(h, g as u64, n)));
                    }
                }
                let total = flows.len();
                let mut exec = MiniExec::new(flows);
                exec.run_with_order(Some(seed));
                assert_eq!(exec.done.len(), total);
                assert_eq!(exec.table.read(exec.group, h.global.gen), 1);
            }
        }
    }
}
