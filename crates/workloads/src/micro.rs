//! Microbenchmark programs: the paper's low-level cost probes.
//!
//! Each function returns a leader [`Program`] ready for
//! [`OsModel::load`](popcorn_kernel::osmodel::OsModel::load); the
//! experiment harness sweeps their parameters.

use popcorn_kernel::program::{MigrateTarget, Op, Placement, ProgEnv, Program, Resume, SyscallReq};
use popcorn_kernel::types::VAddr;
use popcorn_msg::KernelId;

use crate::team::{Shared, Team, TeamConfig};
use crate::ulib::{Flow, MutexLock, MutexUnlock, Poll};

/// A worker that computes for `cycles` and exits — the trivial workload.
#[derive(Debug)]
pub struct ComputeWorker {
    cycles: u64,
    done: bool,
}

/// Builds a boxed [`ComputeWorker`].
pub fn compute_worker(cycles: u64) -> Box<dyn Program> {
    Box::new(ComputeWorker {
        cycles,
        done: false,
    })
}

impl Program for ComputeWorker {
    fn step(&mut self, _resume: Resume, _env: &ProgEnv) -> Op {
        if self.done {
            return Op::Exit(0);
        }
        self.done = true;
        Op::Compute(self.cycles)
    }
}

/// A thread that migrates back and forth between two kernels `hops` times
/// (the paper's migration ping-pong probe). Each odd hop targets `far`,
/// each even hop returns to `near`.
#[derive(Debug)]
pub struct MigrationPingPong {
    hops: u32,
    done_hops: u32,
    near: KernelId,
    far: KernelId,
    compute_per_hop: u64,
    computing: bool,
}

impl MigrationPingPong {
    /// Ping-pong between kernels 0 and 1.
    pub fn new(hops: u32) -> Self {
        Self::between(hops, KernelId(0), KernelId(1))
    }

    /// Ping-pong between two specific kernels.
    pub fn between(hops: u32, near: KernelId, far: KernelId) -> Self {
        MigrationPingPong {
            hops,
            done_hops: 0,
            near,
            far,
            compute_per_hop: 0,
            computing: false,
        }
    }

    /// Adds compute between hops (to study migration under load).
    pub fn with_compute(mut self, cycles: u64) -> Self {
        self.compute_per_hop = cycles;
        self
    }
}

impl Program for MigrationPingPong {
    fn step(&mut self, _resume: Resume, env: &ProgEnv) -> Op {
        if self.compute_per_hop > 0 && !self.computing {
            self.computing = true;
            return Op::Compute(self.compute_per_hop);
        }
        self.computing = false;
        if self.done_hops == self.hops {
            return Op::Exit(0);
        }
        self.done_hops += 1;
        let target = if env.kernel == self.near {
            self.far
        } else {
            self.near
        };
        Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(target)))
    }
}

/// A loop of `getpid` calls — the null-syscall probe (E7).
#[derive(Debug)]
pub struct NullSyscallLoop {
    iters: u32,
}

impl NullSyscallLoop {
    /// `iters` back-to-back `getpid` calls.
    pub fn new(iters: u32) -> Self {
        NullSyscallLoop { iters }
    }
}

impl Program for NullSyscallLoop {
    fn step(&mut self, _resume: Resume, _env: &ProgEnv) -> Op {
        if self.iters == 0 {
            return Op::Exit(0);
        }
        self.iters -= 1;
        Op::Syscall(SyscallReq::GetPid)
    }
}

/// Leader that spawns `children` trivial workers and joins them — the
/// thread-group-creation probe (E3).
pub fn spawn_join_storm(children: usize, placement: Placement) -> Box<dyn Program> {
    let mut cfg = TeamConfig::new(children, 0);
    cfg.placement = placement;
    Team::boxed(cfg, Box::new(|_, _| compute_worker(1_000)))
}

/// A worker that repeatedly maps, touches and unmaps anonymous memory —
/// the `mmap_sem` contention probe (E5).
#[derive(Debug)]
pub struct MmapWorker {
    iters: u32,
    map_bytes: u64,
    state: MmapState,
}

#[derive(Debug)]
enum MmapState {
    Map,
    Touch { base: VAddr, page: u64 },
    Unmap { base: VAddr },
}

impl MmapWorker {
    /// `iters` rounds of map/touch/unmap of `map_bytes`.
    pub fn new(iters: u32, map_bytes: u64) -> Self {
        MmapWorker {
            iters,
            map_bytes,
            state: MmapState::Map,
        }
    }
}

impl Program for MmapWorker {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        loop {
            match self.state {
                MmapState::Map => {
                    if self.iters == 0 {
                        return Op::Exit(0);
                    }
                    self.iters -= 1;
                    self.state = MmapState::Touch {
                        base: VAddr(0),
                        page: 0,
                    };
                    return Op::Syscall(SyscallReq::Mmap {
                        len: self.map_bytes,
                    });
                }
                MmapState::Touch {
                    ref mut base,
                    ref mut page,
                } => {
                    if *page == 0 && base.0 == 0 {
                        let Resume::Sys(res) = resume else {
                            panic!("expected mmap result, got {resume:?}");
                        };
                        *base = VAddr(res.expect_val("mmap"));
                    }
                    let pages = self.map_bytes.div_ceil(VAddr::PAGE_SIZE);
                    if *page == pages {
                        let b = *base;
                        self.state = MmapState::Unmap { base: b };
                        continue;
                    }
                    let addr = base.add(*page * VAddr::PAGE_SIZE);
                    *page += 1;
                    return Op::Store(addr, 1);
                }
                MmapState::Unmap { base } => {
                    self.state = MmapState::Map;
                    let len = self.map_bytes.div_ceil(VAddr::PAGE_SIZE) * VAddr::PAGE_SIZE;
                    return Op::Syscall(SyscallReq::Munmap { addr: base, len });
                }
            }
        }
    }
}

/// Team running [`MmapWorker`]s (E5).
pub fn mmap_storm(threads: usize, iters: u32, map_bytes: u64) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(threads, 0),
        Box::new(move |_, _| Box::new(MmapWorker::new(iters, map_bytes))),
    )
}

/// A worker hammering one shared mutex: lock, short critical section,
/// unlock — the futex-contention probe (E6).
#[derive(Debug)]
pub struct MutexWorker {
    word: VAddr,
    iters: u32,
    critical_cycles: u64,
    phase: MutexPhase,
}

#[derive(Debug)]
enum MutexPhase {
    Start,
    Locking(MutexLock),
    Critical,
    Unlocking(MutexUnlock),
}

impl MutexWorker {
    /// `iters` lock/unlock rounds on `word`.
    pub fn new(word: VAddr, iters: u32, critical_cycles: u64) -> Self {
        MutexWorker {
            word,
            iters,
            critical_cycles,
            phase: MutexPhase::Start,
        }
    }
}

impl Program for MutexWorker {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        loop {
            match &mut self.phase {
                MutexPhase::Start => {
                    if self.iters == 0 {
                        return Op::Exit(0);
                    }
                    self.iters -= 1;
                    let mut lock = MutexLock::new(self.word);
                    let first = lock.step(Resume::Start);
                    self.phase = MutexPhase::Locking(lock);
                    match first {
                        Poll::Op(op) => return op,
                        Poll::Done => unreachable!("lock cannot finish without an op"),
                    }
                }
                MutexPhase::Locking(lock) => match lock.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        self.phase = MutexPhase::Critical;
                        return Op::Compute(self.critical_cycles);
                    }
                },
                MutexPhase::Critical => {
                    let mut unlock = MutexUnlock::new(self.word);
                    let first = unlock.step(Resume::Start);
                    self.phase = MutexPhase::Unlocking(unlock);
                    match first {
                        Poll::Op(op) => return op,
                        Poll::Done => unreachable!("unlock cannot finish without an op"),
                    }
                }
                MutexPhase::Unlocking(unlock) => match unlock.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        self.phase = MutexPhase::Start;
                        continue;
                    }
                },
            }
        }
    }
}

/// Team of [`MutexWorker`]s contending one mutex (E6).
pub fn futex_contention(threads: usize, iters: u32, critical_cycles: u64) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(threads, 0),
        Box::new(move |_, shared: Shared| {
            Box::new(MutexWorker::new(
                shared.sync_slot(1),
                iters,
                critical_cycles,
            ))
        }),
    )
}

/// A worker writing round-robin over a window of shared pages — drives
/// page-ownership bouncing in the replicated kernel (E4's macro cousin).
#[derive(Debug)]
pub struct PageBounceWorker {
    data: VAddr,
    pages: u64,
    iters: u32,
    index: u64,
    stride: u64,
}

impl PageBounceWorker {
    /// `iters` writes striding over `pages` pages starting at `data`;
    /// `start` offsets each worker so they collide.
    pub fn new(data: VAddr, pages: u64, iters: u32, start: u64) -> Self {
        PageBounceWorker {
            data,
            pages,
            iters,
            index: start,
            stride: 1,
        }
    }
}

impl Program for PageBounceWorker {
    fn step(&mut self, _resume: Resume, _env: &ProgEnv) -> Op {
        if self.iters == 0 {
            return Op::Exit(0);
        }
        self.iters -= 1;
        let page = self.index % self.pages;
        self.index += self.stride;
        Op::Store(self.data.add(page * VAddr::PAGE_SIZE + 8), self.index)
    }
}

/// Team of [`PageBounceWorker`]s sharing `pages` pages (page-protocol
/// stress).
pub fn page_bounce(threads: usize, pages: u64, iters: u32) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(threads, pages * VAddr::PAGE_SIZE),
        Box::new(move |i, shared: Shared| {
            Box::new(PageBounceWorker::new(
                shared.data,
                pages,
                iters,
                i as u64 * 7,
            ))
        }),
    )
}

/// Team of [`NullSyscallLoop`]s (E7 syscall scaling).
pub fn null_syscall_storm(threads: usize, iters: u32) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(threads, 0),
        Box::new(move |_, _| Box::new(NullSyscallLoop::new(iters))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ProgEnv {
        ProgEnv {
            tid: popcorn_kernel::types::Tid::new(KernelId(0), 1),
            core: popcorn_hw::CoreId(0),
            kernel: KernelId(0),
            now: popcorn_sim::SimTime::ZERO,
        }
    }

    #[test]
    fn compute_worker_computes_once_then_exits() {
        let mut w = ComputeWorker {
            cycles: 77,
            done: false,
        };
        assert!(matches!(w.step(Resume::Start, &env()), Op::Compute(77)));
        assert!(matches!(w.step(Resume::Done, &env()), Op::Exit(0)));
    }

    #[test]
    fn pingpong_alternates_targets() {
        let mut p = MigrationPingPong::new(2);
        let e0 = env(); // on kernel 0
        match p.step(Resume::Start, &e0) {
            Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(k))) => {
                assert_eq!(k, KernelId(1))
            }
            other => panic!("unexpected {other:?}"),
        }
        let mut e1 = env();
        e1.kernel = KernelId(1);
        match p.step(Resume::Sys(popcorn_kernel::program::SysResult::Val(0)), &e1) {
            Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(k))) => {
                assert_eq!(k, KernelId(0))
            }
            other => panic!("unexpected {other:?}"),
        }
        let e0b = env();
        assert!(matches!(
            p.step(
                Resume::Sys(popcorn_kernel::program::SysResult::Val(0)),
                &e0b
            ),
            Op::Exit(0)
        ));
    }

    #[test]
    fn null_syscall_loop_counts_down() {
        let mut p = NullSyscallLoop::new(2);
        assert!(matches!(
            p.step(Resume::Start, &env()),
            Op::Syscall(SyscallReq::GetPid)
        ));
        assert!(matches!(
            p.step(
                Resume::Sys(popcorn_kernel::program::SysResult::Val(1)),
                &env()
            ),
            Op::Syscall(SyscallReq::GetPid)
        ));
        assert!(matches!(
            p.step(
                Resume::Sys(popcorn_kernel::program::SysResult::Val(1)),
                &env()
            ),
            Op::Exit(0)
        ));
    }

    #[test]
    fn mmap_worker_cycles_map_touch_unmap() {
        let mut w = MmapWorker::new(1, 8192);
        let op = w.step(Resume::Start, &env());
        assert!(matches!(op, Op::Syscall(SyscallReq::Mmap { len: 8192 })));
        // Touch both pages.
        let op = w.step(
            Resume::Sys(popcorn_kernel::program::SysResult::Val(0x7f00_0000_0000)),
            &env(),
        );
        assert!(matches!(op, Op::Store(VAddr(0x7f00_0000_0000), 1)));
        let op = w.step(Resume::Done, &env());
        assert!(matches!(op, Op::Store(VAddr(0x7f00_0000_1000), 1)));
        let op = w.step(Resume::Done, &env());
        match op {
            Op::Syscall(SyscallReq::Munmap { addr, len }) => {
                assert_eq!(addr, VAddr(0x7f00_0000_0000));
                assert_eq!(len, 8192);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            w.step(
                Resume::Sys(popcorn_kernel::program::SysResult::Val(0)),
                &env()
            ),
            Op::Exit(0)
        ));
    }

    #[test]
    fn page_bounce_strides_over_window() {
        let mut w = PageBounceWorker::new(VAddr(0x1000), 2, 3, 0);
        let a = w.step(Resume::Start, &env());
        let b = w.step(Resume::Done, &env());
        match (a, b) {
            (Op::Store(x, _), Op::Store(y, _)) => {
                assert_ne!(x.page(), y.page(), "consecutive writes hit distinct pages");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
