//! NPB-class benchmark skeletons: IS, CG and FT.
//!
//! The paper's evaluation compares the OSes on selected shared-memory
//! benchmarks (NAS Parallel Benchmarks class). What differentiates the
//! OSes is not the arithmetic — it is the *OS-visible* behaviour: how much
//! the benchmark allocates, how its threads share pages, and how often
//! they synchronize. These skeletons reproduce exactly that behaviour and
//! charge the arithmetic as virtual compute cycles:
//!
//! - [`is_benchmark`] — IS (integer sort) class: allocation-heavy
//!   (per-iteration scratch mmap/munmap), neighbour key exchange,
//!   barrier per phase. This is the kernel-contention-bound case where
//!   the paper reports Popcorn beating SMP Linux.
//! - [`cg_benchmark`] — CG (conjugate gradient) class: compute-bound,
//!   read-mostly shared matrix, one barrier per iteration. All three OSes
//!   should scale here.
//! - [`ft_benchmark`] — FT (3-D FFT) class: all-to-all transpose writes
//!   into every other thread's partition — the worst case for
//!   page-ownership migration.

use popcorn_kernel::program::{Op, ProgEnv, Program, Resume, SyscallReq};
use popcorn_kernel::types::VAddr;

use crate::team::{Shared, Team, TeamConfig};
use crate::ulib::{Barrier, BarrierWait, Flow, HierBarrier, HierBarrierWait, Poll};

/// Scale parameters of an NPB-class run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpbConfig {
    /// Worker threads.
    pub threads: usize,
    /// Outer iterations.
    pub iterations: u32,
    /// Pages per thread partition (and per-iteration scratch size for IS).
    pub pages_per_thread: u64,
    /// Compute cycles charged per thread per iteration.
    pub compute_cycles: u64,
    /// 0 = flat barrier; otherwise the number of groups of a hierarchical
    /// (combining) barrier, with worker `i` in group `i % groups`. Matches
    /// kernel placement when workers are spawned with `Placement::Auto`
    /// round-robin over the same number of kernels.
    pub barrier_groups: u64,
}

impl NpbConfig {
    /// A small class (quick tests): 4 iterations, 4 pages/thread, 100k
    /// cycles (~42 µs at 2.4 GHz).
    pub fn class_s(threads: usize) -> Self {
        NpbConfig {
            threads,
            iterations: 4,
            pages_per_thread: 4,
            compute_cycles: 100_000,
            barrier_groups: 0,
        }
    }

    /// The workload class used by the reproduction's headline figures:
    /// 12 iterations, 8 pages/thread, 1.2M cycles (~0.5 ms) per iteration.
    pub fn class_a(threads: usize) -> Self {
        NpbConfig {
            threads,
            iterations: 12,
            pages_per_thread: 8,
            compute_cycles: 1_200_000,
            barrier_groups: 0,
        }
    }

    /// Total shared-data bytes the benchmark maps.
    pub fn data_bytes(&self) -> u64 {
        self.threads as u64 * self.pages_per_thread * VAddr::PAGE_SIZE
    }

    fn partition(&self, shared: &Shared, index: usize) -> VAddr {
        shared
            .data
            .add(index as u64 * self.pages_per_thread * VAddr::PAGE_SIZE)
    }
}

/// Drives an embedded barrier (flat or hierarchical) from inside a worker
/// state machine.
#[derive(Debug)]
struct AtBarrier(Box<dyn Flow>);

impl AtBarrier {
    fn begin(cfg: &NpbConfig, shared: &Shared, index: usize) -> (Self, Op) {
        let mut flow: Box<dyn Flow> = if cfg.barrier_groups == 0 {
            Box::new(BarrierWait::new(Barrier::at(
                shared.sync_slot(1),
                cfg.threads as u64,
            )))
        } else {
            let groups = cfg.barrier_groups;
            let h = HierBarrier::at(shared.sync_slot(8), groups);
            let g = index as u64 % groups;
            // Exact party count of group g: floor share plus one for the
            // first `threads % groups` groups.
            let base = cfg.threads as u64 / groups;
            let extra = u64::from(g < cfg.threads as u64 % groups);
            Box::new(HierBarrierWait::new(h, g, base + extra))
        };
        match flow.step(Resume::Start) {
            Poll::Op(op) => (AtBarrier(flow), op),
            Poll::Done => unreachable!("barrier cannot complete without ops"),
        }
    }

    fn step(&mut self, resume: Resume) -> Poll {
        self.0.step(resume)
    }
}

// ---------------------------------------------------------------------
// IS: allocation-heavy bucket sort with neighbour exchange
// ---------------------------------------------------------------------

#[derive(Debug)]
enum IsState {
    IterStart,
    MapScratch,
    FillScratch { scratch: VAddr, page: u64 },
    Computing { scratch: VAddr },
    WriteKeys { scratch: VAddr, page: u64 },
    ExchangeBarrier { scratch: VAddr, b: AtBarrier },
    ReadNeighbor { scratch: VAddr, page: u64 },
    DoneBarrier { scratch: VAddr, b: AtBarrier },
    Unmap,
    Finished,
}

/// One IS-class worker.
#[derive(Debug)]
pub struct IsWorker {
    cfg: NpbConfig,
    index: usize,
    shared: Shared,
    iter: u32,
    state: IsState,
}

impl IsWorker {
    fn new(cfg: NpbConfig, index: usize, shared: Shared) -> Self {
        IsWorker {
            cfg,
            index,
            shared,
            iter: 0,
            state: IsState::IterStart,
        }
    }
}

impl Program for IsWorker {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        loop {
            match &mut self.state {
                IsState::IterStart => {
                    if self.iter == self.cfg.iterations {
                        self.state = IsState::Finished;
                        continue;
                    }
                    self.iter += 1;
                    self.state = IsState::MapScratch;
                    return Op::Syscall(SyscallReq::Mmap {
                        len: self.cfg.pages_per_thread * VAddr::PAGE_SIZE,
                    });
                }
                IsState::MapScratch => {
                    let Resume::Sys(res) = resume else {
                        panic!("IS expected mmap result, got {resume:?}");
                    };
                    let scratch = VAddr(res.expect_val("IS scratch mmap"));
                    self.state = IsState::FillScratch { scratch, page: 0 };
                    continue;
                }
                IsState::FillScratch { scratch, page } => {
                    if *page == self.cfg.pages_per_thread {
                        let s = *scratch;
                        self.state = IsState::Computing { scratch: s };
                        return Op::Compute(self.cfg.compute_cycles);
                    }
                    let addr = scratch.add(*page * VAddr::PAGE_SIZE);
                    *page += 1;
                    return Op::Store(addr, self.iter as u64);
                }
                IsState::Computing { scratch } => {
                    let s = *scratch;
                    self.state = IsState::WriteKeys {
                        scratch: s,
                        page: 0,
                    };
                    continue;
                }
                IsState::WriteKeys { scratch, page } => {
                    if *page == self.cfg.pages_per_thread {
                        let s = *scratch;
                        let (b, op) = AtBarrier::begin(&self.cfg, &self.shared, self.index);
                        self.state = IsState::ExchangeBarrier { scratch: s, b };
                        return op;
                    }
                    let own = self.cfg.partition(&self.shared, self.index);
                    let addr = own.add(*page * VAddr::PAGE_SIZE + 16);
                    *page += 1;
                    return Op::Store(addr, (self.index as u64) << 32 | self.iter as u64);
                }
                IsState::ExchangeBarrier { scratch, b } => match b.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        let s = *scratch;
                        self.state = IsState::ReadNeighbor {
                            scratch: s,
                            page: 0,
                        };
                        continue;
                    }
                },
                IsState::ReadNeighbor { scratch, page } => {
                    if *page == self.cfg.pages_per_thread {
                        let s = *scratch;
                        let (b, op) = AtBarrier::begin(&self.cfg, &self.shared, self.index);
                        self.state = IsState::DoneBarrier { scratch: s, b };
                        return op;
                    }
                    let neighbor = (self.index + 1) % self.cfg.threads;
                    let base = self.cfg.partition(&self.shared, neighbor);
                    let addr = base.add(*page * VAddr::PAGE_SIZE + 16);
                    *page += 1;
                    return Op::Load(addr);
                }
                IsState::DoneBarrier { scratch, b } => match b.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        let s = *scratch;
                        self.state = IsState::Unmap;
                        return Op::Syscall(SyscallReq::Munmap {
                            addr: s,
                            len: self.cfg.pages_per_thread * VAddr::PAGE_SIZE,
                        });
                    }
                },
                IsState::Unmap => {
                    self.state = IsState::IterStart;
                    continue;
                }
                IsState::Finished => return Op::Exit(0),
            }
        }
    }
}

/// Builds the IS-class team leader.
pub fn is_benchmark(cfg: NpbConfig) -> Box<dyn Program> {
    is_benchmark_placed(cfg, popcorn_kernel::program::Placement::Auto)
}

/// IS-class with explicit worker placement (e.g. `Local` to pin a process
/// to its home kernel, as the paper's multi-process runs do).
pub fn is_benchmark_placed(
    cfg: NpbConfig,
    placement: popcorn_kernel::program::Placement,
) -> Box<dyn Program> {
    let mut team = TeamConfig::new(cfg.threads, cfg.data_bytes());
    team.placement = placement;
    Team::boxed(
        team,
        Box::new(move |i, shared| Box::new(IsWorker::new(cfg, i, shared))),
    )
}

// ---------------------------------------------------------------------
// CG: compute-bound with a read-mostly shared matrix
// ---------------------------------------------------------------------

#[derive(Debug)]
enum CgState {
    IterStart,
    ReadMatrix { page: u64 },
    Reduce { b: AtBarrier },
    Finished,
}

/// One CG-class worker.
#[derive(Debug)]
pub struct CgWorker {
    cfg: NpbConfig,
    index: usize,
    shared: Shared,
    iter: u32,
    state: CgState,
}

impl CgWorker {
    fn new(cfg: NpbConfig, index: usize, shared: Shared) -> Self {
        CgWorker {
            cfg,
            index,
            shared,
            iter: 0,
            state: CgState::IterStart,
        }
    }
}

impl Program for CgWorker {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        loop {
            match &mut self.state {
                CgState::IterStart => {
                    if self.iter == self.cfg.iterations {
                        self.state = CgState::Finished;
                        continue;
                    }
                    self.iter += 1;
                    self.state = CgState::ReadMatrix { page: 0 };
                    return Op::Compute(self.cfg.compute_cycles);
                }
                CgState::ReadMatrix { page } => {
                    // Sparse mat-vec: read a few pages of the shared
                    // matrix — own partition plus one neighbour page.
                    if *page == self.cfg.pages_per_thread + 1 {
                        let (b, op) = AtBarrier::begin(&self.cfg, &self.shared, self.index);
                        self.state = CgState::Reduce { b };
                        return op;
                    }
                    let addr = if *page < self.cfg.pages_per_thread {
                        self.cfg
                            .partition(&self.shared, self.index)
                            .add(*page * VAddr::PAGE_SIZE)
                    } else {
                        let n = (self.index + 1) % self.cfg.threads;
                        self.cfg.partition(&self.shared, n)
                    };
                    *page += 1;
                    return Op::Load(addr);
                }
                CgState::Reduce { b } => match b.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        self.state = CgState::IterStart;
                        continue;
                    }
                },
                CgState::Finished => return Op::Exit(0),
            }
        }
    }
}

/// Builds the CG-class team leader.
pub fn cg_benchmark(cfg: NpbConfig) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(cfg.threads, cfg.data_bytes()),
        Box::new(move |i, shared| Box::new(CgWorker::new(cfg, i, shared))),
    )
}

// ---------------------------------------------------------------------
// FT: all-to-all transpose
// ---------------------------------------------------------------------

#[derive(Debug)]
enum FtState {
    IterStart,
    Scatter { peer: usize },
    TransposeBarrier { b: AtBarrier },
    Gather { page: u64 },
    DoneBarrier { b: AtBarrier },
    Finished,
}

/// One FT-class worker.
#[derive(Debug)]
pub struct FtWorker {
    cfg: NpbConfig,
    index: usize,
    shared: Shared,
    iter: u32,
    state: FtState,
}

impl FtWorker {
    fn new(cfg: NpbConfig, index: usize, shared: Shared) -> Self {
        FtWorker {
            cfg,
            index,
            shared,
            iter: 0,
            state: FtState::IterStart,
        }
    }
}

impl Program for FtWorker {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        loop {
            match &mut self.state {
                FtState::IterStart => {
                    if self.iter == self.cfg.iterations {
                        self.state = FtState::Finished;
                        continue;
                    }
                    self.iter += 1;
                    self.state = FtState::Scatter { peer: 0 };
                    return Op::Compute(self.cfg.compute_cycles);
                }
                FtState::Scatter { peer } => {
                    // Transpose: write one line into every peer's
                    // partition (page chosen by our own index).
                    if *peer == self.cfg.threads {
                        let (b, op) = AtBarrier::begin(&self.cfg, &self.shared, self.index);
                        self.state = FtState::TransposeBarrier { b };
                        return op;
                    }
                    let p = *peer;
                    *peer += 1;
                    if p == self.index {
                        continue; // own partition written during gather
                    }
                    let page = self.index as u64 % self.cfg.pages_per_thread;
                    let addr = self
                        .cfg
                        .partition(&self.shared, p)
                        .add(page * VAddr::PAGE_SIZE + 8 * (self.index as u64 % 64));
                    return Op::Store(addr, (self.iter as u64) << 16 | self.index as u64);
                }
                FtState::TransposeBarrier { b } => match b.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        self.state = FtState::Gather { page: 0 };
                        continue;
                    }
                },
                FtState::Gather { page } => {
                    if *page == self.cfg.pages_per_thread {
                        let (b, op) = AtBarrier::begin(&self.cfg, &self.shared, self.index);
                        self.state = FtState::DoneBarrier { b };
                        return op;
                    }
                    let addr = self
                        .cfg
                        .partition(&self.shared, self.index)
                        .add(*page * VAddr::PAGE_SIZE);
                    *page += 1;
                    return Op::Load(addr);
                }
                FtState::DoneBarrier { b } => match b.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        self.state = FtState::IterStart;
                        continue;
                    }
                },
                FtState::Finished => return Op::Exit(0),
            }
        }
    }
}

/// Builds the FT-class team leader.
pub fn ft_benchmark(cfg: NpbConfig) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(cfg.threads, cfg.data_bytes()),
        Box::new(move |i, shared| Box::new(FtWorker::new(cfg, i, shared))),
    )
}

// ---------------------------------------------------------------------
// MG: V-cycle multigrid with nearest-neighbour halo exchange
// ---------------------------------------------------------------------

#[derive(Debug)]
enum MgState {
    IterStart,
    Smooth { level: u64, page: u64 },
    Halo { level: u64, side: u8 },
    LevelBarrier { level: u64, b: AtBarrier },
    Finished,
}

/// One MG-class worker: per iteration it walks a V-cycle of levels; at
/// each level it smooths (writes) a level-dependent slice of its own
/// partition, reads one halo page from each neighbour, and crosses a
/// barrier. Coarser levels touch fewer pages but synchronize just as
/// often — the communication-bound regime multigrid is known for.
#[derive(Debug)]
pub struct MgWorker {
    cfg: NpbConfig,
    index: usize,
    shared: Shared,
    iter: u32,
    state: MgState,
}

impl MgWorker {
    fn new(cfg: NpbConfig, index: usize, shared: Shared) -> Self {
        MgWorker {
            cfg,
            index,
            shared,
            iter: 0,
            state: MgState::IterStart,
        }
    }

    fn levels(&self) -> u64 {
        // log2 of the partition size, at least 1.
        64 - self.cfg.pages_per_thread.leading_zeros() as u64
    }

    fn pages_at(&self, level: u64) -> u64 {
        (self.cfg.pages_per_thread >> level).max(1)
    }
}

impl Program for MgWorker {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        loop {
            match &mut self.state {
                MgState::IterStart => {
                    if self.iter == self.cfg.iterations {
                        self.state = MgState::Finished;
                        continue;
                    }
                    self.iter += 1;
                    self.state = MgState::Smooth { level: 0, page: 0 };
                    return Op::Compute(self.cfg.compute_cycles);
                }
                MgState::Smooth { level, page } => {
                    let lvl = *level;
                    let p = *page;
                    if p == self.pages_at(lvl) {
                        self.state = MgState::Halo {
                            level: lvl,
                            side: 0,
                        };
                        continue;
                    }
                    if let MgState::Smooth { page, .. } = &mut self.state {
                        *page += 1;
                    }
                    let addr = self
                        .cfg
                        .partition(&self.shared, self.index)
                        .add(p * VAddr::PAGE_SIZE + 8 * lvl);
                    return Op::Store(addr, (self.iter as u64) << 8 | lvl);
                }
                MgState::Halo { level, side } => {
                    let lvl = *level;
                    if *side == 2 {
                        let (b, op) = AtBarrier::begin(&self.cfg, &self.shared, self.index);
                        self.state = MgState::LevelBarrier { level: lvl, b };
                        return op;
                    }
                    let n = self.cfg.threads;
                    let neighbor = if *side == 0 {
                        (self.index + 1) % n
                    } else {
                        (self.index + n - 1) % n
                    };
                    *side += 1;
                    let addr = self.cfg.partition(&self.shared, neighbor);
                    return Op::Load(addr);
                }
                MgState::LevelBarrier { level, b } => match b.step(resume) {
                    Poll::Op(op) => return op,
                    Poll::Done => {
                        let next = *level + 1;
                        if next == self.levels() {
                            self.state = MgState::IterStart;
                        } else {
                            self.state = MgState::Smooth {
                                level: next,
                                page: 0,
                            };
                        }
                        continue;
                    }
                },
                MgState::Finished => return Op::Exit(0),
            }
        }
    }
}

/// Builds the MG-class team leader.
pub fn mg_benchmark(cfg: NpbConfig) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(cfg.threads, cfg.data_bytes()),
        Box::new(move |i, shared| Box::new(MgWorker::new(cfg, i, shared))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ProgEnv {
        ProgEnv {
            tid: popcorn_kernel::types::Tid::new(popcorn_msg::KernelId(0), 1),
            core: popcorn_hw::CoreId(0),
            kernel: popcorn_msg::KernelId(0),
            now: popcorn_sim::SimTime::ZERO,
        }
    }

    fn shared() -> Shared {
        Shared {
            sync: VAddr(0x7f00_0000_0000),
            data: VAddr(0x7f00_0001_0000),
            threads: 2,
        }
    }

    #[test]
    fn configs_scale_sanely() {
        let s = NpbConfig::class_s(8);
        let a = NpbConfig::class_a(8);
        assert!(a.iterations > s.iterations);
        assert!(a.compute_cycles > s.compute_cycles);
        assert_eq!(s.data_bytes(), 8 * 4 * 4096);
    }

    #[test]
    fn partitions_are_disjoint() {
        let cfg = NpbConfig::class_s(4);
        let sh = Shared {
            sync: VAddr(0x1000),
            data: VAddr(0x100000),
            threads: 4,
        };
        let p0 = cfg.partition(&sh, 0);
        let p1 = cfg.partition(&sh, 1);
        assert_eq!(p1.0 - p0.0, cfg.pages_per_thread * VAddr::PAGE_SIZE);
    }

    #[test]
    fn is_worker_starts_with_scratch_mmap() {
        let cfg = NpbConfig {
            threads: 2,
            iterations: 1,
            pages_per_thread: 2,
            compute_cycles: 10,
            barrier_groups: 0,
        };
        let mut w = IsWorker::new(cfg, 0, shared());
        match w.step(Resume::Start, &env()) {
            Op::Syscall(SyscallReq::Mmap { len }) => assert_eq!(len, 8192),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ft_worker_scatters_to_peers_not_self() {
        let cfg = NpbConfig {
            threads: 2,
            iterations: 1,
            pages_per_thread: 2,
            compute_cycles: 10,
            barrier_groups: 0,
        };
        let sh = shared();
        let mut w = FtWorker::new(cfg, 0, sh);
        // Compute first...
        assert!(matches!(w.step(Resume::Start, &env()), Op::Compute(10)));
        // ...then a store into peer 1's partition.
        match w.step(Resume::Done, &env()) {
            Op::Store(addr, _) => {
                let p1 = cfg.partition(&sh, 1);
                assert!(addr.0 >= p1.0 && addr.0 < p1.0 + cfg.pages_per_thread * 4096);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mg_worker_walks_levels_coarsening() {
        let cfg = NpbConfig {
            threads: 2,
            iterations: 1,
            pages_per_thread: 4, // levels: 3 (4, 2, 1 pages)
            compute_cycles: 5,
            barrier_groups: 0,
        };
        let mut w = MgWorker::new(cfg, 0, shared());
        assert_eq!(w.levels(), 3);
        assert_eq!(w.pages_at(0), 4);
        assert_eq!(w.pages_at(1), 2);
        assert_eq!(w.pages_at(2), 1);
        assert_eq!(w.pages_at(9), 1);
        // Compute, then 4 smoothing stores at level 0.
        assert!(matches!(w.step(Resume::Start, &env()), Op::Compute(5)));
        for _ in 0..4 {
            assert!(matches!(w.step(Resume::Done, &env()), Op::Store(_, _)));
        }
        // Two halo loads (right then left neighbour).
        assert!(matches!(w.step(Resume::Done, &env()), Op::Load(_)));
        assert!(matches!(w.step(Resume::Done, &env()), Op::Load(_)));
    }

    #[test]
    fn cg_worker_reads_matrix_after_compute() {
        let cfg = NpbConfig {
            threads: 2,
            iterations: 1,
            pages_per_thread: 2,
            compute_cycles: 99,
            barrier_groups: 0,
        };
        let mut w = CgWorker::new(cfg, 0, shared());
        assert!(matches!(w.step(Resume::Start, &env()), Op::Compute(99)));
        assert!(matches!(w.step(Resume::Done, &env()), Op::Load(_)));
    }
}
