//! Leader/worker scaffolding for multi-threaded workloads.
//!
//! Every benchmark follows the same shape the paper's applications do: a
//! leader thread maps shared memory, spawns `T` workers, waits for them to
//! finish, and exits. [`Team`] implements the leader; [`SignalingWorker`]
//! wraps a worker program so its exit signals the leader's join counter.

use popcorn_kernel::program::{Op, Placement, ProgEnv, Program, Resume, SyscallReq};
use popcorn_kernel::types::VAddr;

use crate::ulib::{Flow, JoinSignal, JoinWait, Poll};

/// Addresses of the shared regions a [`Team`] sets up, passed to each
/// worker's factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shared {
    /// Synchronization page(s): join counter at offset 0, barriers and
    /// mutexes from offset 64 up (one 64-byte slot each, false-sharing
    /// safe by convention).
    pub sync: VAddr,
    /// Data region of the size requested in [`TeamConfig`].
    pub data: VAddr,
    /// Number of workers.
    pub threads: usize,
}

impl Shared {
    /// The join counter all workers signal.
    pub fn join_word(&self) -> VAddr {
        self.sync
    }

    /// The `i`-th 64-byte synchronization slot (slot 0 is the join word).
    pub fn sync_slot(&self, i: usize) -> VAddr {
        self.sync.add(64 * i as u64)
    }
}

/// Builds the `index`-th worker program given the shared layout.
pub type WorkerFactory = Box<dyn Fn(usize, Shared) -> Box<dyn Program> + Send>;

/// Team parameters.
#[derive(Debug, Clone)]
pub struct TeamConfig {
    /// Worker count.
    pub threads: usize,
    /// Bytes of shared data to map (rounded up to pages).
    pub data_bytes: u64,
    /// Worker placement (`Auto` spreads across the machine).
    pub placement: Placement,
}

impl TeamConfig {
    /// A team of `threads` workers with `data_bytes` of shared data,
    /// spread automatically.
    pub fn new(threads: usize, data_bytes: u64) -> Self {
        TeamConfig {
            threads,
            data_bytes,
            placement: Placement::Auto,
        }
    }
}

enum LeaderState {
    MapSync,
    MapData { sync: VAddr },
    Spawn { shared: Shared, next: usize },
    Join { join: JoinWait },
    Done,
}

/// The leader program: map, spawn, join, exit.
///
/// # Example
///
/// ```
/// use popcorn_workloads::team::{Team, TeamConfig};
/// use popcorn_workloads::micro::compute_worker;
/// use popcorn_core::PopcornOs;
/// use popcorn_hw::Topology;
/// use popcorn_kernel::osmodel::OsModel;
///
/// let mut os = PopcornOs::builder().topology(Topology::new(2, 2)).kernels(2).build();
/// os.load(Team::boxed(
///     TeamConfig::new(4, 4096),
///     Box::new(|i, _shared| compute_worker(1_000 * (i as u64 + 1))),
/// ));
/// let report = os.run();
/// assert!(report.is_clean());
/// assert_eq!(report.exited_tasks, 5); // leader + 4 workers
/// ```
pub struct Team {
    cfg: TeamConfig,
    factory: WorkerFactory,
    state: LeaderState,
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("threads", &self.cfg.threads)
            .field("data_bytes", &self.cfg.data_bytes)
            .finish_non_exhaustive()
    }
}

impl Team {
    /// Creates a team leader.
    ///
    /// # Panics
    ///
    /// Panics if the team has no workers.
    pub fn new(cfg: TeamConfig, factory: WorkerFactory) -> Self {
        assert!(cfg.threads > 0, "team needs at least one worker");
        Team {
            cfg,
            factory,
            state: LeaderState::MapSync,
        }
    }

    /// Boxed constructor, convenient for `OsModel::load`.
    pub fn boxed(cfg: TeamConfig, factory: WorkerFactory) -> Box<dyn Program> {
        Box::new(Team::new(cfg, factory))
    }
}

/// Bytes of synchronization area: the join word plus 63 more slots.
const SYNC_BYTES: u64 = 4096;

impl Program for Team {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        loop {
            match &mut self.state {
                LeaderState::MapSync => {
                    self.state = LeaderState::MapData {
                        sync: VAddr(0), // filled on resume
                    };
                    return Op::Syscall(SyscallReq::Mmap { len: SYNC_BYTES });
                }
                LeaderState::MapData { sync } => {
                    let Resume::Sys(res) = resume else {
                        panic!("leader expected mmap result, got {resume:?}");
                    };
                    *sync = VAddr(res.expect_val("mmap sync area"));
                    let sync = *sync;
                    if self.cfg.data_bytes == 0 {
                        let shared = Shared {
                            sync,
                            data: VAddr(0),
                            threads: self.cfg.threads,
                        };
                        self.state = LeaderState::Spawn { shared, next: 0 };
                        continue;
                    }
                    self.state = LeaderState::Spawn {
                        shared: Shared {
                            sync,
                            data: VAddr(0),
                            threads: self.cfg.threads,
                        },
                        next: usize::MAX, // marker: waiting for data mmap
                    };
                    return Op::Syscall(SyscallReq::Mmap {
                        len: self.cfg.data_bytes,
                    });
                }
                LeaderState::Spawn { shared, next } => {
                    if *next == usize::MAX {
                        let Resume::Sys(res) = resume else {
                            panic!("leader expected mmap result, got {resume:?}");
                        };
                        shared.data = VAddr(res.expect_val("mmap data area"));
                        *next = 0;
                    } else if *next > 0 {
                        // Previous clone returned; nothing to record.
                        let Resume::Sys(res) = resume else {
                            panic!("leader expected clone result, got {resume:?}");
                        };
                        res.expect_val("clone worker");
                    }
                    if *next == self.cfg.threads {
                        let join = JoinWait::new(shared.join_word(), self.cfg.threads as u64);
                        self.state = LeaderState::Join { join };
                        continue;
                    }
                    let i = *next;
                    *next += 1;
                    let inner = (self.factory)(i, *shared);
                    let child = Box::new(SignalingWorker::new(inner, shared.join_word()));
                    return Op::Syscall(SyscallReq::Clone {
                        child,
                        placement: self.cfg.placement,
                    });
                }
                LeaderState::Join { join } => {
                    // JoinWait's first state ignores the resume value, so
                    // the last clone's result passes through harmlessly.
                    match join.step(resume) {
                        Poll::Op(op) => return op,
                        Poll::Done => {
                            self.state = LeaderState::Done;
                            return Op::Exit(0);
                        }
                    }
                }
                LeaderState::Done => return Op::Exit(0),
            }
        }
    }
}

/// Wraps a worker so that its `Exit` first signals the team join counter.
pub struct SignalingWorker {
    inner: Option<Box<dyn Program>>,
    signal: Option<JoinSignal>,
    join_word: VAddr,
    code: i32,
}

impl std::fmt::Debug for SignalingWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignalingWorker")
            .field("signalling", &self.signal.is_some())
            .finish_non_exhaustive()
    }
}

impl SignalingWorker {
    /// Wraps `inner`.
    pub fn new(inner: Box<dyn Program>, join_word: VAddr) -> Self {
        SignalingWorker {
            inner: Some(inner),
            signal: None,
            join_word,
            code: 0,
        }
    }
}

impl Program for SignalingWorker {
    fn step(&mut self, resume: Resume, env: &ProgEnv) -> Op {
        if let Some(sig) = &mut self.signal {
            return match sig.step(resume) {
                Poll::Op(op) => op,
                Poll::Done => Op::Exit(self.code),
            };
        }
        let inner = self.inner.as_mut().expect("worker still running");
        match inner.step(resume, env) {
            Op::Exit(code) => {
                self.code = code;
                self.inner = None;
                let mut sig = JoinSignal::new(self.join_word);
                let first = sig.step(Resume::Start);
                self.signal = Some(sig);
                match first {
                    Poll::Op(op) => op,
                    Poll::Done => Op::Exit(code),
                }
            }
            op => op,
        }
    }

    fn migration_payload(&self) -> usize {
        self.inner.as_ref().map_or(4096, |p| p.migration_payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Trivial;
    impl Program for Trivial {
        fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op {
            Op::Exit(3)
        }
    }

    #[test]
    fn shared_layout_slots_are_disjoint() {
        let s = Shared {
            sync: VAddr(0x1000),
            data: VAddr(0x9000),
            threads: 4,
        };
        assert_eq!(s.join_word(), VAddr(0x1000));
        assert_eq!(s.sync_slot(1), VAddr(0x1040));
        assert_eq!(s.sync_slot(2), VAddr(0x1080));
    }

    #[test]
    fn signaling_worker_signals_then_exits_with_inner_code() {
        let mut w = SignalingWorker::new(Box::new(Trivial), VAddr(0x1000));
        let env = ProgEnv {
            tid: popcorn_kernel::types::Tid::new(popcorn_msg::KernelId(0), 1),
            core: popcorn_hw::CoreId(0),
            kernel: popcorn_msg::KernelId(0),
            now: popcorn_sim::SimTime::ZERO,
        };
        // Inner exits immediately → worker starts the join signal (an RMW).
        let op = w.step(Resume::Start, &env);
        assert!(matches!(op, Op::AtomicRmw(_, _)));
        // RMW done → futex wake.
        let op = w.step(Resume::Value(0), &env);
        assert!(matches!(op, Op::Syscall(SyscallReq::Futex(_))));
        // Wake done → exit with the inner's code.
        let op = w.step(
            Resume::Sys(popcorn_kernel::program::SysResult::Val(1)),
            &env,
        );
        assert!(matches!(op, Op::Exit(3)));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_team_rejected() {
        Team::new(TeamConfig::new(0, 0), Box::new(|_, _| Box::new(Trivial)));
    }
}
