//! Adversarial workloads: scenarios built to punish a migration policy.
//!
//! Where [`micro`](crate::micro) probes protocol *costs*, these programs
//! probe policy *judgment*. Each one embodies a trap a naive policy walks
//! into:
//!
//! - [`thundering_herd`] — one waker repeatedly releases a herd of futex
//!   waiters parked across every kernel. A wake-locality policy should
//!   chase the waiters; a load policy sees almost no runnable load
//!   (parked waiters don't run) and must not thrash.
//! - [`pingpong_storm`] — scripted migration ping-pong plus a pile of
//!   compute ballast on one kernel. The load imbalance is real, but a
//!   threshold policy without hysteresis amplifies the ping-pong instead
//!   of fixing the skew.
//! - [`hot_page_skew`] — every worker hammers the *same* page sequence,
//!   so ownership bounces and threads spend their lives blocked on page
//!   RPCs. Blocked threads don't count as runnable load — telemetry that
//!   only reads runqueue depth sees idle kernels and migrates into the
//!   fire.
//! - [`straggler_ring`] — error-tolerant hoppers ride the kernel ring
//!   while a fault plan makes one kernel slow or unreachable. A
//!   fault-aware policy reroutes the scripted hops; everyone else keeps
//!   dutifully migrating into the straggler.
//! - [`migrating_writers`] — ring hoppers that drag a private working
//!   set with them: each arrival rewrites the worker's own pages, so
//!   ownership (and, with replication on, the page walk bill) chases the
//!   thread around the machine. E15's walk generator.
//!
//! All of these run unchanged under every policy (including
//! `ScriptedOnly`), so E13/E15 can sweep full policies × scenarios
//! matrices.

use popcorn_kernel::program::{
    FutexOp, MigrateTarget, Op, Placement, ProgEnv, Program, Resume, RmwOp, SysResult, SyscallReq,
};
use popcorn_kernel::types::VAddr;
use popcorn_msg::KernelId;

use crate::micro::{compute_worker, MigrationPingPong, PageBounceWorker};
use crate::team::{Shared, Team, TeamConfig};

/// A herd waiter: for each round `r`, parks on the round word until the
/// waker has bumped it to at least `r`.
///
/// The wait is value-gated exactly like the ulib barrier: the waiter
/// re-reads the word and only parks if it is unchanged, so a wake racing
/// the park turns into a harmless `EAGAIN` and the waiter can never sleep
/// past the final round.
#[derive(Debug)]
pub struct HerdWaiter {
    word: VAddr,
    rounds: u64,
    round: u64,
    parked: bool,
}

impl HerdWaiter {
    /// Waits on `word` for `rounds` rounds.
    pub fn new(word: VAddr, rounds: u64) -> Self {
        HerdWaiter {
            word,
            rounds,
            round: 1,
            parked: false,
        }
    }
}

impl Program for HerdWaiter {
    fn step(&mut self, resume: Resume, _env: &ProgEnv) -> Op {
        if self.round > self.rounds {
            return Op::Exit(0);
        }
        // A wait just returned (woken or EAGAIN); either way, re-read.
        if self.parked {
            self.parked = false;
            return Op::AtomicRmw(self.word, RmwOp::Add(0));
        }
        match resume {
            Resume::Value(v) => {
                if v >= self.round {
                    // Round reached; advance (possibly past several).
                    self.round = v.min(self.rounds) + 1;
                    if self.round > self.rounds {
                        return Op::Exit(0);
                    }
                    Op::AtomicRmw(self.word, RmwOp::Add(0))
                } else {
                    self.parked = true;
                    Op::Syscall(SyscallReq::Futex(FutexOp::Wait {
                        uaddr: self.word,
                        expected: v,
                    }))
                }
            }
            _ => Op::AtomicRmw(self.word, RmwOp::Add(0)),
        }
    }
}

/// The herd's waker: `rounds` times, compute for `work_ns`, bump the round
/// word, and wake everyone parked on it.
#[derive(Debug)]
pub struct HerdWaker {
    word: VAddr,
    rounds: u64,
    work_ns: u64,
    state: u8, // 0 = compute, 1 = bump, 2 = wake
    done: u64,
}

impl HerdWaker {
    /// Wakes the herd on `word` for `rounds` rounds, computing `work_ns`
    /// before each wake so the waiters have time to pile up.
    pub fn new(word: VAddr, rounds: u64, work_ns: u64) -> Self {
        HerdWaker {
            word,
            rounds,
            work_ns,
            state: 0,
            done: 0,
        }
    }
}

impl Program for HerdWaker {
    fn step(&mut self, _resume: Resume, _env: &ProgEnv) -> Op {
        match self.state {
            0 => {
                if self.done == self.rounds {
                    return Op::Exit(0);
                }
                self.state = 1;
                Op::Compute(self.work_ns)
            }
            1 => {
                self.state = 2;
                Op::AtomicRmw(self.word, RmwOp::Add(1))
            }
            _ => {
                self.state = 0;
                self.done += 1;
                Op::Syscall(SyscallReq::Futex(FutexOp::Wake {
                    uaddr: self.word,
                    count: u32::MAX,
                }))
            }
        }
    }
}

/// Thundering-herd futex: worker 0 is the waker, the rest park across the
/// machine (`Placement::Auto`) and stampede on every round.
pub fn thundering_herd(waiters: usize, rounds: u64, work_ns: u64) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(waiters + 1, 0),
        Box::new(move |i, shared: Shared| {
            let word = shared.sync_slot(1);
            if i == 0 {
                Box::new(HerdWaker::new(word, rounds, work_ns))
            } else {
                Box::new(HerdWaiter::new(word, rounds))
            }
        }),
    )
}

/// Pathological migration ping-pong with a real load skew underneath:
/// `pairs` workers bounce between kernels 0 and 1 on every step, while
/// `ballast` compute workers sit on the leader's kernel
/// (`Placement::Local`). A threshold policy is baited twice — the bouncers
/// make runqueue depth flap, and the ballast makes kernel 0 genuinely
/// overloaded.
pub fn pingpong_storm(
    pairs: usize,
    hops: u32,
    compute_ns: u64,
    ballast: usize,
    ballast_ns: u64,
) -> Box<dyn Program> {
    let mut cfg = TeamConfig::new(pairs + ballast, 0);
    cfg.placement = Placement::Local;
    Team::boxed(
        cfg,
        Box::new(move |i, _shared| {
            if i < pairs {
                Box::new(
                    MigrationPingPong::between(hops, KernelId(0), KernelId(1))
                        .with_compute(compute_ns),
                )
            } else {
                compute_worker(ballast_ns)
            }
        }),
    )
}

/// Skewed hot-page ownership: every worker strides over the same window
/// *from the same starting offset*, so each write steals ownership of the
/// same hot page back and forth. Most threads are blocked in page RPCs at
/// any instant — runnable-load telemetry reads near-idle kernels.
pub fn hot_page_skew(threads: usize, pages: u64, iters: u32) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(threads, pages * VAddr::PAGE_SIZE),
        Box::new(move |_i, shared: Shared| {
            Box::new(PageBounceWorker::new(shared.data, pages, iters, 0))
        }),
    )
}

/// Migrates around the kernel ring with compute between hops, tolerating
/// a failed hop (a blacked-out or crashed target aborts the migration
/// back to the origin with `EIO`). The straggler scenario's building
/// block: scripted hops keep steering into the slow kernel unless a
/// fault-aware policy redirects them.
#[derive(Debug)]
pub struct TolerantRingHopper {
    hops_left: u32,
    kernels: u16,
    compute_ns: u64,
    migrating: bool,
    /// Hops that failed with an error and were skipped.
    pub hops_failed: u32,
}

impl TolerantRingHopper {
    /// `hops` ring hops over `kernels` kernels, computing `compute_ns`
    /// between hops.
    pub fn new(hops: u32, kernels: u16, compute_ns: u64) -> Self {
        TolerantRingHopper {
            hops_left: hops,
            kernels,
            compute_ns,
            migrating: false,
            hops_failed: 0,
        }
    }
}

impl Program for TolerantRingHopper {
    fn step(&mut self, r: Resume, env: &ProgEnv) -> Op {
        if self.migrating {
            self.migrating = false;
            if matches!(r, Resume::Sys(SysResult::Err(_))) {
                self.hops_failed += 1;
            }
            return Op::Compute(self.compute_ns);
        }
        if self.hops_left == 0 {
            return Op::Exit(0);
        }
        self.hops_left -= 1;
        self.migrating = true;
        let next = KernelId((env.kernel.0 + 1) % self.kernels);
        Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(next)))
    }
}

/// One straggler-ring hopper (load several as independent processes; the
/// harness pairs them with a fault plan that delays or blacks out one
/// kernel).
pub fn straggler_hopper(hops: u32, kernels: u16, compute_ns: u64) -> Box<dyn Program> {
    Box::new(TolerantRingHopper::new(hops, kernels, compute_ns))
}

/// What a [`MigratingWriter`] is waiting on.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WriterState {
    /// Between hops (the migrate syscall or the inter-hop compute just
    /// resumed, or we are at the very start).
    Hopping,
    /// Rewriting the private working set at the current kernel.
    Touching,
}

/// Hops the kernel ring with a private working set in tow: each arrival
/// rewrites the worker's own pages before computing, so every hop turns
/// into write faults whose page ownership chases the thread around the
/// machine.
///
/// This is the access pattern page-table replication exists for: the
/// faults land at a kernel that has never seen the group's tables, so
/// with replication on but no replica the walk goes remote every time,
/// and a replica (eager or policy-placed) converts the whole stream to
/// local walks (E15).
#[derive(Debug)]
pub struct MigratingWriter {
    base: VAddr,
    pages: u64,
    hops_left: u32,
    kernels: u16,
    compute_ns: u64,
    next_page: u64,
    seq: u64,
    state: WriterState,
}

impl MigratingWriter {
    /// `hops` ring hops over `kernels` kernels; after each hop, rewrites
    /// the `pages` pages starting at `base`, then computes `compute_ns`.
    pub fn new(base: VAddr, pages: u64, hops: u32, kernels: u16, compute_ns: u64) -> Self {
        MigratingWriter {
            base,
            pages,
            hops_left: hops,
            kernels,
            compute_ns,
            next_page: 0,
            seq: 0,
            state: WriterState::Hopping,
        }
    }

    fn touch(&mut self) -> Op {
        let addr = self.base.add(self.next_page * VAddr::PAGE_SIZE);
        self.next_page += 1;
        self.seq += 1;
        Op::Store(addr, self.seq)
    }
}

impl Program for MigratingWriter {
    fn step(&mut self, _r: Resume, env: &ProgEnv) -> Op {
        match self.state {
            WriterState::Hopping => {
                if self.hops_left == 0 {
                    return Op::Exit(0);
                }
                self.hops_left -= 1;
                self.next_page = 0;
                self.state = WriterState::Touching;
                let next = KernelId((env.kernel.0 + 1) % self.kernels);
                Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(next)))
            }
            WriterState::Touching => {
                if self.next_page < self.pages {
                    self.touch()
                } else {
                    self.state = WriterState::Hopping;
                    Op::Compute(self.compute_ns)
                }
            }
        }
    }
}

/// Migrates once to an assigned kernel, then stays put and rewrites a
/// page range for a fixed number of rounds. Two of these sharing one
/// range on different kernels bounce every page's ownership back and
/// forth — each store is a write fault serialized at whichever service
/// point is home for the page.
///
/// The home-saturation generator (E16): with a flat home every pair's
/// traffic queues at the one root directory server; with per-socket
/// delegates a pair pinned inside one socket is served by that socket's
/// delegate, and the root only sees first-touch delegation.
#[derive(Debug)]
pub struct PinnedBouncer {
    target: KernelId,
    base: VAddr,
    pages: u64,
    rounds: u32,
    compute_ns: u64,
    placed: bool,
    next_page: u64,
    seq: u64,
}

impl PinnedBouncer {
    /// Migrates to `target`, then rewrites the `pages` pages at `base`
    /// for `rounds` rounds with `compute_ns` of think time between
    /// rounds.
    pub fn new(target: KernelId, base: VAddr, pages: u64, rounds: u32, compute_ns: u64) -> Self {
        PinnedBouncer {
            target,
            base,
            pages,
            rounds,
            compute_ns,
            placed: false,
            next_page: 0,
            seq: 0,
        }
    }
}

impl Program for PinnedBouncer {
    fn step(&mut self, _r: Resume, _env: &ProgEnv) -> Op {
        if !self.placed {
            self.placed = true;
            return Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(self.target)));
        }
        if self.next_page < self.pages {
            let addr = self.base.add(self.next_page * VAddr::PAGE_SIZE);
            self.next_page += 1;
            self.seq += 1;
            return Op::Store(addr, self.seq);
        }
        if self.rounds == 0 {
            return Op::Exit(0);
        }
        self.rounds -= 1;
        self.next_page = 0;
        Op::Compute(self.compute_ns)
    }
}

/// One [`PinnedBouncer`] pair per entry of `pairs`: both workers pin to
/// their pair's two kernels and fight over the same disjoint
/// `pages_each`-page slice for `rounds` rounds. Disjoint ranges mean
/// pairs never share a page — all they can contend on is the home
/// service point itself, which is exactly what E16 measures.
pub fn kernel_pair_bouncers(
    pairs: Vec<(KernelId, KernelId)>,
    pages_each: u64,
    rounds: u32,
    compute_ns: u64,
) -> Box<dyn Program> {
    let workers = pairs.len() * 2;
    let mut cfg = TeamConfig::new(workers, pairs.len() as u64 * pages_each * VAddr::PAGE_SIZE);
    cfg.placement = Placement::Local;
    Team::boxed(
        cfg,
        Box::new(move |i, shared: Shared| {
            let pair = pairs[i / 2];
            let target = if i % 2 == 0 { pair.0 } else { pair.1 };
            let base = shared
                .data
                .add((i / 2) as u64 * pages_each * VAddr::PAGE_SIZE);
            Box::new(PinnedBouncer::new(
                target, base, pages_each, rounds, compute_ns,
            ))
        }),
    )
}

/// `workers` ring hoppers, each dragging `pages_each` private pages of
/// working set around `kernels` kernels for `hops` hops (see
/// [`MigratingWriter`]).
pub fn migrating_writers(
    workers: usize,
    hops: u32,
    kernels: u16,
    pages_each: u64,
    compute_ns: u64,
) -> Box<dyn Program> {
    Team::boxed(
        TeamConfig::new(workers, workers as u64 * pages_each * VAddr::PAGE_SIZE),
        Box::new(move |i, shared: Shared| {
            let base = shared.data.add(i as u64 * pages_each * VAddr::PAGE_SIZE);
            Box::new(MigratingWriter::new(
                base, pages_each, hops, kernels, compute_ns,
            ))
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ProgEnv {
        ProgEnv {
            tid: popcorn_kernel::types::Tid::new(KernelId(0), 1),
            core: popcorn_hw::CoreId(0),
            kernel: KernelId(0),
            now: popcorn_sim::SimTime::ZERO,
        }
    }

    const W: VAddr = VAddr(0x1040);

    #[test]
    fn herd_waiter_parks_only_on_stale_round() {
        let mut w = HerdWaiter::new(W, 2);
        // First step: read the word.
        assert!(matches!(w.step(Resume::Start, &env()), Op::AtomicRmw(a, RmwOp::Add(0)) if a == W));
        // Word is 0 < round 1: park, gated on the value just read.
        match w.step(Resume::Value(0), &env()) {
            Op::Syscall(SyscallReq::Futex(FutexOp::Wait { uaddr, expected })) => {
                assert_eq!(uaddr, W);
                assert_eq!(expected, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Woken: re-read; word now 2 >= both rounds: exit without parking.
        assert!(matches!(
            w.step(Resume::Sys(SysResult::Val(0)), &env()),
            Op::AtomicRmw(_, _)
        ));
        assert!(matches!(w.step(Resume::Value(2), &env()), Op::Exit(0)));
    }

    #[test]
    fn herd_waiter_eagain_rereads_instead_of_wedging() {
        let mut w = HerdWaiter::new(W, 1);
        w.step(Resume::Start, &env());
        w.step(Resume::Value(0), &env()); // parks
                                          // The word changed between read and park: EAGAIN → re-read.
        let op = w.step(
            Resume::Sys(SysResult::Err(popcorn_kernel::types::Errno::Again)),
            &env(),
        );
        assert!(matches!(op, Op::AtomicRmw(_, RmwOp::Add(0))));
        assert!(matches!(w.step(Resume::Value(1), &env()), Op::Exit(0)));
    }

    #[test]
    fn herd_waker_computes_bumps_wakes_each_round() {
        let mut w = HerdWaker::new(W, 1, 500);
        assert!(matches!(w.step(Resume::Start, &env()), Op::Compute(500)));
        assert!(matches!(
            w.step(Resume::Done, &env()),
            Op::AtomicRmw(a, RmwOp::Add(1)) if a == W
        ));
        assert!(matches!(
            w.step(Resume::Value(0), &env()),
            Op::Syscall(SyscallReq::Futex(FutexOp::Wake {
                count: u32::MAX,
                ..
            }))
        ));
        assert!(matches!(
            w.step(Resume::Sys(SysResult::Val(3)), &env()),
            Op::Exit(0)
        ));
    }

    #[test]
    fn tolerant_hopper_counts_failed_hops_and_continues() {
        let mut h = TolerantRingHopper::new(2, 4, 1_000);
        assert!(matches!(
            h.step(Resume::Start, &env()),
            Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(KernelId(1))))
        ));
        // The hop failed (aborted back to the origin): skip and compute.
        assert!(matches!(
            h.step(
                Resume::Sys(SysResult::Err(popcorn_kernel::types::Errno::Io)),
                &env()
            ),
            Op::Compute(1_000)
        ));
        assert_eq!(h.hops_failed, 1);
        // Second hop succeeds, then exit.
        assert!(matches!(
            h.step(Resume::Done, &env()),
            Op::Syscall(SyscallReq::Migrate(_))
        ));
        let mut e1 = env();
        e1.kernel = KernelId(1);
        assert!(matches!(
            h.step(Resume::Sys(SysResult::Val(0)), &e1),
            Op::Compute(1_000)
        ));
        assert!(matches!(h.step(Resume::Done, &e1), Op::Exit(0)));
    }

    #[test]
    fn pinned_bouncer_migrates_once_then_rewrites_in_place() {
        let mut b = PinnedBouncer::new(KernelId(3), VAddr(0x8000), 2, 1, 700);
        assert!(matches!(
            b.step(Resume::Start, &env()),
            Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(KernelId(3))))
        ));
        // Round 0: rewrite both pages, then think.
        assert!(matches!(
            b.step(Resume::Sys(SysResult::Val(0)), &env()),
            Op::Store(a, 1) if a == VAddr(0x8000)
        ));
        assert!(matches!(
            b.step(Resume::Done, &env()),
            Op::Store(a, 2) if a == VAddr(0x8000 + VAddr::PAGE_SIZE)
        ));
        assert!(matches!(b.step(Resume::Done, &env()), Op::Compute(700)));
        // Round 1: same pages again — no further migration — then exit.
        assert!(matches!(
            b.step(Resume::Done, &env()),
            Op::Store(a, 3) if a == VAddr(0x8000)
        ));
        assert!(matches!(b.step(Resume::Done, &env()), Op::Store(_, 4)));
        assert!(matches!(b.step(Resume::Done, &env()), Op::Exit(0)));
    }

    #[test]
    fn migrating_writer_rewrites_its_pages_after_every_hop() {
        let mut w = MigratingWriter::new(VAddr(0x8000), 2, 2, 4, 1_000);
        // First hop: ring successor of kernel 0.
        assert!(matches!(
            w.step(Resume::Start, &env()),
            Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(KernelId(1))))
        ));
        // Arrival: rewrite both private pages, then compute.
        assert!(matches!(
            w.step(Resume::Sys(SysResult::Val(0)), &env()),
            Op::Store(a, 1) if a == VAddr(0x8000)
        ));
        assert!(matches!(
            w.step(Resume::Done, &env()),
            Op::Store(a, 2) if a == VAddr(0x8000 + VAddr::PAGE_SIZE)
        ));
        assert!(matches!(w.step(Resume::Done, &env()), Op::Compute(1_000)));
        // Second hop from kernel 1, same rewrite, then exit.
        let mut e1 = env();
        e1.kernel = KernelId(1);
        assert!(matches!(
            w.step(Resume::Done, &e1),
            Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(KernelId(2))))
        ));
        assert!(matches!(
            w.step(Resume::Sys(SysResult::Val(0)), &e1),
            Op::Store(a, 3) if a == VAddr(0x8000)
        ));
        assert!(matches!(w.step(Resume::Done, &e1), Op::Store(_, 4)));
        assert!(matches!(w.step(Resume::Done, &e1), Op::Compute(1_000)));
        assert!(matches!(w.step(Resume::Done, &e1), Op::Exit(0)));
    }
}
