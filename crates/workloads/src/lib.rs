#![warn(missing_docs)]
//! Benchmark programs for the replicated-kernel OS reproduction.
//!
//! - [`ulib`] — the user-space synchronization library (futex mutexes,
//!   barriers, join counters) as resumable flows;
//! - [`team`] — leader/worker scaffolding every benchmark uses;
//! - [`micro`] — the paper's microbenchmark probes (migration ping-pong,
//!   clone storms, mmap storms, futex contention, page bouncing, null
//!   syscalls);
//! - [`npb`] — NPB-class macro-benchmark skeletons (IS, CG, FT);
//! - [`adversarial`] — policy-stress scenarios (thundering-herd futex,
//!   migration ping-pong storms, hot-page ownership skew, straggler
//!   rings) built to trap naive migration policies.
//!
//! Every workload is a [`Program`](popcorn_kernel::program::Program) and
//! runs unchanged on all three OS models, exactly as the paper runs the
//! same binaries on Popcorn and SMP Linux. (The Barrelfish comparison uses
//! the same programs too; the multikernel model's restriction — no
//! cross-kernel shared memory — is enforced by *placement*, see
//! `popcorn-baselines`.)

pub mod adversarial;
pub mod micro;
pub mod npb;
pub mod team;
pub mod ulib;

pub use npb::NpbConfig;
pub use team::{Shared, Team, TeamConfig};
