//! Randomized property tests for the message fabric: FIFO delivery per
//! channel, monotone costs, and consistent statistics under random
//! traffic. Driven by the deterministic [`SimRng`] (the build is offline,
//! so no external property-testing framework).

use popcorn_hw::{CoreId, HwParams, Machine, Topology};
use popcorn_msg::{Fabric, KernelId, MsgParams, Wire};
use popcorn_sim::{SimRng, SimTime};

struct Blob(usize);
impl Wire for Blob {
    fn wire_size(&self) -> usize {
        self.0
    }
}

fn fabric(kernels: u16) -> Fabric {
    let machine = Machine::new(Topology::new(2, 8), HwParams::default());
    let locs: Vec<CoreId> = (0..kernels).map(|k| CoreId(k * 2)).collect();
    Fabric::new(&machine, locs, MsgParams::default())
}

/// Messages on one ordered channel are delivered FIFO regardless of sizes
/// and send times (send times are nondecreasing, as produced by a single
/// sending kernel's event stream).
#[test]
fn per_channel_delivery_is_fifo() {
    let mut rng = SimRng::new(0x5EED_3001);
    for _ in 0..256 {
        let msgs: Vec<(usize, u64)> = {
            let len = rng.range_u64(1, 60) as usize;
            (0..len)
                .map(|_| (rng.index(8192), rng.range_u64(0, 2_000)))
                .collect()
        };
        let mut f = fabric(2);
        let mut clock = 0u64;
        let mut last_delivery = SimTime::ZERO;
        for (size, advance) in msgs {
            clock += advance;
            let d = f.send(
                SimTime::from_nanos(clock),
                KernelId(0),
                KernelId(1),
                Blob(size),
            );
            assert!(d.deliver_at >= last_delivery, "FIFO violated");
            assert!(
                d.deliver_at > SimTime::from_nanos(clock),
                "zero-latency delivery"
            );
            last_delivery = d.deliver_at;
        }
        assert_eq!(f.latency_histogram().count(), f.total_sends());
    }
}

/// Bigger payloads never deliver faster than smaller ones sent from a
/// fresh channel at the same instant.
#[test]
fn latency_is_monotone_in_payload() {
    let mut rng = SimRng::new(0x5EED_3002);
    for _ in 0..256 {
        let a = rng.index(16384);
        let b = rng.index(16384);
        let (small, big) = if a <= b { (a, b) } else { (b, a) };
        let mut f1 = fabric(2);
        let d_small = f1.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(small));
        let mut f2 = fabric(2);
        let d_big = f2.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(big));
        assert!(d_big.deliver_at >= d_small.deliver_at);
    }
}

/// Independent channels do not interfere: traffic on (0,1) leaves the
/// latency of a fresh (2,3) message identical to an idle fabric.
#[test]
fn channels_are_independent() {
    let mut rng = SimRng::new(0x5EED_3003);
    for _ in 0..256 {
        let mut busy = fabric(4);
        for _ in 0..rng.range_u64(0, 40) {
            busy.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(rng.index(4096)));
        }
        let probe_busy = busy.send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(64));
        let mut idle = fabric(4);
        let probe_idle = idle.send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(64));
        assert_eq!(probe_busy.deliver_at, probe_idle.deliver_at);
    }
}

/// Channel statistics account exactly for the messages sent.
#[test]
fn stats_account_for_every_send() {
    let mut rng = SimRng::new(0x5EED_3004);
    for _ in 0..256 {
        let plan: Vec<(u16, u16)> = {
            let len = rng.range_u64(1, 50) as usize;
            (0..len)
                .map(|_| (rng.range_u64(0, 3) as u16, rng.range_u64(0, 3) as u16))
                .collect()
        };
        let mut f = fabric(3);
        let mut expected = 0u64;
        for (from, to) in plan {
            if from == to {
                continue;
            }
            f.send(SimTime::ZERO, KernelId(from), KernelId(to), Blob(32));
            expected += 1;
        }
        assert_eq!(f.total_sends(), expected);
        let per_channel: u64 = f.channel_stats().iter().map(|&(_, _, n, _)| n).sum();
        assert_eq!(per_channel, expected);
    }
}
