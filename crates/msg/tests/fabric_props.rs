//! Property tests for the message fabric: FIFO delivery per channel,
//! monotone costs, and consistent statistics under random traffic.

use popcorn_hw::{CoreId, HwParams, Machine, Topology};
use popcorn_msg::{Fabric, KernelId, MsgParams, Wire};
use popcorn_sim::SimTime;
use proptest::prelude::*;

struct Blob(usize);
impl Wire for Blob {
    fn wire_size(&self) -> usize {
        self.0
    }
}

fn fabric(kernels: u16) -> Fabric {
    let machine = Machine::new(Topology::new(2, 8), HwParams::default());
    let locs: Vec<CoreId> = (0..kernels).map(|k| CoreId(k * 2)).collect();
    Fabric::new(&machine, locs, MsgParams::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Messages on one ordered channel are delivered FIFO regardless of
    /// sizes and send times (send times are nondecreasing, as produced by
    /// a single sending kernel's event stream).
    #[test]
    fn per_channel_delivery_is_fifo(
        msgs in proptest::collection::vec((0usize..8192, 0u64..2_000), 1..60)
    ) {
        let mut f = fabric(2);
        let mut clock = 0u64;
        let mut last_delivery = SimTime::ZERO;
        for (size, advance) in msgs {
            clock += advance;
            let d = f.send(
                SimTime::from_nanos(clock),
                KernelId(0),
                KernelId(1),
                Blob(size),
            );
            prop_assert!(d.deliver_at >= last_delivery, "FIFO violated");
            prop_assert!(d.deliver_at > SimTime::from_nanos(clock), "zero-latency delivery");
            last_delivery = d.deliver_at;
        }
        prop_assert_eq!(f.latency_histogram().count(), f.total_sends());
    }

    /// Bigger payloads never deliver faster than smaller ones sent from a
    /// fresh channel at the same instant.
    #[test]
    fn latency_is_monotone_in_payload(a in 0usize..16384, b in 0usize..16384) {
        let (small, big) = if a <= b { (a, b) } else { (b, a) };
        let mut f1 = fabric(2);
        let d_small = f1.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(small));
        let mut f2 = fabric(2);
        let d_big = f2.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(big));
        prop_assert!(d_big.deliver_at >= d_small.deliver_at);
    }

    /// Independent channels do not interfere: traffic on (0,1) leaves the
    /// latency of a fresh (2,3) message identical to an idle fabric.
    #[test]
    fn channels_are_independent(noise in proptest::collection::vec(0usize..4096, 0..40)) {
        let mut busy = fabric(4);
        for size in noise {
            busy.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(size));
        }
        let probe_busy = busy.send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(64));
        let mut idle = fabric(4);
        let probe_idle = idle.send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(64));
        prop_assert_eq!(probe_busy.deliver_at, probe_idle.deliver_at);
    }

    /// Channel statistics account exactly for the messages sent.
    #[test]
    fn stats_account_for_every_send(
        plan in proptest::collection::vec((0u16..3, 0u16..3), 1..50)
    ) {
        let mut f = fabric(3);
        let mut expected = 0u64;
        for (from, to) in plan {
            if from == to {
                continue;
            }
            f.send(SimTime::ZERO, KernelId(from), KernelId(to), Blob(32));
            expected += 1;
        }
        prop_assert_eq!(f.total_sends(), expected);
        let per_channel: u64 = f.channel_stats().iter().map(|&(_, _, n, _)| n).sum();
        prop_assert_eq!(per_channel, expected);
    }
}
