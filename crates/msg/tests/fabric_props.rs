//! Randomized property tests for the message fabric: FIFO delivery per
//! channel, monotone costs, and consistent statistics under random
//! traffic. Driven by the deterministic [`SimRng`] (the build is offline,
//! so no external property-testing framework).

use popcorn_hw::{CoreId, HwParams, Machine, Topology};
use popcorn_msg::{ChannelFaults, Fabric, FaultPlan, KernelId, MsgParams, Wire};
use popcorn_sim::{SimRng, SimTime};

struct Blob(usize);
impl Wire for Blob {
    fn wire_size(&self) -> usize {
        self.0
    }
}

fn fabric(kernels: u16) -> Fabric {
    let machine = Machine::new(Topology::new(2, 8), HwParams::default());
    let locs: Vec<CoreId> = (0..kernels).map(|k| CoreId(k * 2)).collect();
    Fabric::new(&machine, locs, MsgParams::default())
}

/// Messages on one ordered channel are delivered FIFO regardless of sizes
/// and send times (send times are nondecreasing, as produced by a single
/// sending kernel's event stream).
#[test]
fn per_channel_delivery_is_fifo() {
    let mut rng = SimRng::new(0x5EED_3001);
    for _ in 0..256 {
        let msgs: Vec<(usize, u64)> = {
            let len = rng.range_u64(1, 60) as usize;
            (0..len)
                .map(|_| (rng.index(8192), rng.range_u64(0, 2_000)))
                .collect()
        };
        let mut f = fabric(2);
        let mut clock = 0u64;
        let mut last_delivery = SimTime::ZERO;
        for (size, advance) in msgs {
            clock += advance;
            let d = f
                .send(
                    SimTime::from_nanos(clock),
                    KernelId(0),
                    KernelId(1),
                    Blob(size),
                )
                .expect_delivered();
            assert!(d.deliver_at >= last_delivery, "FIFO violated");
            assert!(
                d.deliver_at > SimTime::from_nanos(clock),
                "zero-latency delivery"
            );
            last_delivery = d.deliver_at;
        }
        assert_eq!(f.latency_histogram().count(), f.total_sends());
    }
}

/// Bigger payloads never deliver faster than smaller ones sent from a
/// fresh channel at the same instant.
#[test]
fn latency_is_monotone_in_payload() {
    let mut rng = SimRng::new(0x5EED_3002);
    for _ in 0..256 {
        let a = rng.index(16384);
        let b = rng.index(16384);
        let (small, big) = if a <= b { (a, b) } else { (b, a) };
        let mut f1 = fabric(2);
        let d_small = f1
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(small))
            .expect_delivered();
        let mut f2 = fabric(2);
        let d_big = f2
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(big))
            .expect_delivered();
        assert!(d_big.deliver_at >= d_small.deliver_at);
    }
}

/// Independent channels do not interfere: traffic on (0,1) leaves the
/// latency of a fresh (2,3) message identical to an idle fabric.
#[test]
fn channels_are_independent() {
    let mut rng = SimRng::new(0x5EED_3003);
    for _ in 0..256 {
        let mut busy = fabric(4);
        for _ in 0..rng.range_u64(0, 40) {
            let _ = busy.send(
                SimTime::ZERO,
                KernelId(0),
                KernelId(1),
                Blob(rng.index(4096)),
            );
        }
        let probe_busy = busy
            .send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(64))
            .expect_delivered();
        let mut idle = fabric(4);
        let probe_idle = idle
            .send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(64))
            .expect_delivered();
        assert_eq!(probe_busy.deliver_at, probe_idle.deliver_at);
    }
}

/// Channel statistics account exactly for the messages sent.
#[test]
fn stats_account_for_every_send() {
    let mut rng = SimRng::new(0x5EED_3004);
    for _ in 0..256 {
        let plan: Vec<(u16, u16)> = {
            let len = rng.range_u64(1, 50) as usize;
            (0..len)
                .map(|_| (rng.range_u64(0, 3) as u16, rng.range_u64(0, 3) as u16))
                .collect()
        };
        let mut f = fabric(3);
        let mut expected = 0u64;
        for (from, to) in plan {
            if from == to {
                continue;
            }
            let _ = f.send(SimTime::ZERO, KernelId(from), KernelId(to), Blob(32));
            expected += 1;
        }
        assert_eq!(f.total_sends(), expected);
        let per_channel: u64 = f.channel_stats().iter().map(|&(_, _, n, _)| n).sum();
        assert_eq!(per_channel, expected);
    }
}

/// Under heavy delay/duplication injection, per-channel FIFO ordering and
/// loss accounting still hold: delivered + lost == sent, and deliveries
/// (including duplicates) never go backwards in time.
#[test]
fn fifo_and_accounting_hold_under_faults() {
    let mut rng = SimRng::new(0x5EED_3005);
    for case in 0..64u64 {
        let params = MsgParams {
            faults: FaultPlan {
                seed: 0xFA_0000 + case,
                uniform: Some(ChannelFaults {
                    drop_p: 0.2,
                    dup_p: 0.2,
                    delay_p: 0.5,
                    delay_max_ns: 50_000,
                }),
                ..FaultPlan::none()
            },
            ..MsgParams::default()
        };
        let machine = Machine::new(Topology::new(2, 8), HwParams::default());
        let locs: Vec<CoreId> = (0..2).map(|k| CoreId(k * 2)).collect();
        let mut f = Fabric::new(&machine, locs, params);
        let mut clock = 0u64;
        let mut last_delivery = SimTime::ZERO;
        let mut delivered = 0u64;
        for _ in 0..rng.range_u64(1, 80) {
            clock += rng.range_u64(0, 2_000);
            match f.send(
                SimTime::from_nanos(clock),
                KernelId(0),
                KernelId(1),
                Blob(rng.index(4096)),
            ) {
                popcorn_msg::SendOutcome::Delivered {
                    delivery,
                    duplicate_at,
                } => {
                    assert!(delivery.deliver_at >= last_delivery, "FIFO violated");
                    last_delivery = delivery.deliver_at;
                    if let Some(dup) = duplicate_at {
                        assert!(dup >= delivery.deliver_at);
                        last_delivery = dup;
                    }
                    delivered += 1;
                }
                popcorn_msg::SendOutcome::Dropped { .. } => {}
            }
        }
        let c = f.fault_counters();
        assert_eq!(delivered + c.total_lost(), f.total_sends());
        assert_eq!(f.latency_histogram().count(), delivered);
    }
}
