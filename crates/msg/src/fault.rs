//! Deterministic fault injection for the message fabric.
//!
//! A [`FaultPlan`] scripts what the fabric does to messages *after* the
//! sender has paid the full send cost: uniform or per-channel probabilistic
//! **drop**, **extra delay** (jittered) and **duplication**, scripted
//! **channel blackout windows** (everything on `(from → to)` in `[start,
//! end)` is lost), **kernel crashes** (kernel `k` neither sends nor receives
//! after time `t`), and scripted **drop-the-nth-send** entries for
//! regression tests that need to lose exactly one specific message.
//!
//! All randomness comes from one [`SimRng`](popcorn_sim::SimRng) seeded by
//! the plan, and the fabric draws a *fixed* number of values per faulty-mode
//! send regardless of the outcome, so the same seed + plan always produces
//! the same fault pattern no matter which faults actually fire. With the
//! default [`FaultPlan::none()`] the fabric performs **zero** draws and the
//! send path is byte-identical to a build without this module.

use popcorn_sim::{SimRng, SimTime};

use crate::fabric::KernelId;

/// Probabilistic fault rates for one channel (or, as `uniform`, for all).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelFaults {
    /// Probability that a message is silently lost in flight.
    pub drop_p: f64,
    /// Probability that a message is delivered twice.
    pub dup_p: f64,
    /// Probability that a message picks up extra in-flight delay.
    pub delay_p: f64,
    /// Maximum extra delay, in nanoseconds (uniform jitter in `[0, max]`).
    pub delay_max_ns: u64,
}

impl ChannelFaults {
    /// Drop-only faults at probability `p`.
    pub fn drop_only(p: f64) -> Self {
        ChannelFaults {
            drop_p: p,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_max_ns: 0,
        }
    }
}

/// A scripted window during which one directed channel loses everything.
#[derive(Debug, Clone, PartialEq)]
pub struct Blackout {
    /// Sending kernel.
    pub from: KernelId,
    /// Receiving kernel.
    pub to: KernelId,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
}

/// A scripted kernel crash: `kernel` stops sending and receiving at `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Crash {
    /// The kernel that dies.
    pub kernel: KernelId,
    /// Crash instant; any message sent or due at/after this time involving
    /// the kernel is lost.
    pub at: SimTime,
}

/// A deterministic script of message-fabric faults.
///
/// The default plan ([`FaultPlan::none()`]) injects nothing and costs
/// nothing: the fabric skips the fault path entirely, preserving the RNG
/// stream and byte-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injection RNG (independent of every workload RNG).
    pub seed: u64,
    /// Fault rates applied to every channel (unless overridden per channel).
    pub uniform: Option<ChannelFaults>,
    /// Per-channel overrides, keyed by directed pair.
    pub channels: Vec<((KernelId, KernelId), ChannelFaults)>,
    /// Scripted blackout windows.
    pub blackouts: Vec<Blackout>,
    /// Scripted kernel crashes.
    pub crashes: Vec<Crash>,
    /// Scripted single-message drops: lose the `n`-th send (1-based) on the
    /// directed channel. Exact and probability-free — for tests.
    pub drop_nth: Vec<(KernelId, KernelId, u64)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, no RNG draws, byte-identical behaviour.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            uniform: None,
            channels: Vec::new(),
            blackouts: Vec::new(),
            crashes: Vec::new(),
            drop_nth: Vec::new(),
        }
    }

    /// A plan that drops every message with probability `p` on every
    /// channel, seeded by `seed`.
    pub fn uniform_drop(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            uniform: Some(ChannelFaults::drop_only(p)),
            ..Self::none()
        }
    }

    /// Adds a blackout window on the directed channel `from → to`.
    pub fn with_blackout(
        mut self,
        from: KernelId,
        to: KernelId,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        self.blackouts.push(Blackout {
            from,
            to,
            start,
            end,
        });
        self
    }

    /// Adds a kernel crash at `at`.
    pub fn with_crash(mut self, kernel: KernelId, at: SimTime) -> Self {
        self.crashes.push(Crash { kernel, at });
        self
    }

    /// Overrides fault rates on the directed channel `from → to`.
    pub fn with_channel(mut self, from: KernelId, to: KernelId, faults: ChannelFaults) -> Self {
        self.channels.push(((from, to), faults));
        self
    }

    /// Adds a scripted drop of the `nth` send (1-based) on `from → to`.
    pub fn with_drop_nth(mut self, from: KernelId, to: KernelId, nth: u64) -> Self {
        self.drop_nth.push((from, to, nth));
        self
    }

    /// Whether the plan injects anything at all. `false` guarantees the
    /// fabric takes the zero-overhead path.
    pub fn is_active(&self) -> bool {
        self.uniform.is_some()
            || !self.channels.is_empty()
            || !self.blackouts.is_empty()
            || !self.crashes.is_empty()
            || !self.drop_nth.is_empty()
    }

    /// Whether `kernel` has crashed by virtual time `now`.
    pub fn is_crashed(&self, kernel: KernelId, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.kernel == kernel && now >= c.at)
    }

    /// Whether the directed channel `from → to` is inside a blackout window
    /// at `now` (windows are half-open, `[start, end)`).
    pub fn is_blacked_out(&self, from: KernelId, to: KernelId, now: SimTime) -> bool {
        self.blackouts
            .iter()
            .any(|b| b.from == from && b.to == to && now >= b.start && now < b.end)
    }

    /// Fault rates in effect for the directed channel, if any.
    fn rates_for(&self, from: KernelId, to: KernelId) -> Option<&ChannelFaults> {
        self.channels
            .iter()
            .find(|&&(pair, _)| pair == (from, to))
            .map(|(_, f)| f)
            .or(self.uniform.as_ref())
    }

    /// Validates probabilities and windows.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let check = |f: &ChannelFaults, whom: &str| -> Result<(), String> {
            for (name, p) in [
                ("drop_p", f.drop_p),
                ("dup_p", f.dup_p),
                ("delay_p", f.delay_p),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{whom}: {name} = {p} outside [0, 1]"));
                }
            }
            if f.delay_p > 0.0 && f.delay_max_ns == 0 {
                return Err(format!("{whom}: delay_p > 0 with delay_max_ns = 0"));
            }
            Ok(())
        };
        if let Some(u) = &self.uniform {
            check(u, "uniform faults")?;
        }
        for ((f, t), rates) in &self.channels {
            check(rates, &format!("channel {f}->{t}"))?;
        }
        for b in &self.blackouts {
            if b.start >= b.end {
                return Err(format!(
                    "blackout {}->{}: empty window [{}, {})",
                    b.from, b.to, b.start, b.end
                ));
            }
        }
        for (f, t, n) in &self.drop_nth {
            if f == t {
                return Err(format!("drop_nth on self-channel {f}->{t}"));
            }
            if *n == 0 {
                return Err("drop_nth indices are 1-based; 0 is invalid".into());
            }
        }
        Ok(())
    }
}

/// What a faulty fabric did to messages, per category — surfaced through
/// `PopStats` so experiments can report injected faults next to recovery
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages lost to probabilistic drop.
    pub drops: u64,
    /// Messages delivered twice.
    pub dups: u64,
    /// Messages that picked up extra delay.
    pub delays: u64,
    /// Messages lost inside a blackout window.
    pub blackout_drops: u64,
    /// Messages lost because either endpoint had crashed.
    pub crash_drops: u64,
}

impl FaultCounters {
    /// Total messages lost for any reason.
    pub fn total_lost(&self) -> u64 {
        self.drops + self.blackout_drops + self.crash_drops
    }
}

/// Live injection state owned by the fabric when a plan is active.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    pub(crate) plan: FaultPlan,
    rng: SimRng,
    pub(crate) counters: FaultCounters,
}

/// The fabric's per-send fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver normally, with this much extra in-flight delay and an
    /// optional duplicate.
    Deliver {
        extra_delay: SimTime,
        duplicate: bool,
    },
    /// The message is lost.
    Drop,
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::new(plan.seed);
        FaultRuntime {
            plan,
            rng,
            counters: FaultCounters::default(),
        }
    }

    /// Decides the fate of the `send_ordinal`-th send (1-based) on the
    /// channel. Always draws the same number of RNG values for a given plan
    /// shape, so decisions for later messages never depend on which earlier
    /// faults fired.
    pub(crate) fn judge(
        &mut self,
        now: SimTime,
        from: KernelId,
        to: KernelId,
        send_ordinal: u64,
    ) -> Verdict {
        // Fixed draw schedule (only when probabilistic rates exist for this
        // channel): drop, delay?, jitter, dup. Scripted faults are
        // probability-free and draw nothing.
        let (dropped_by_rate, extra_delay, duplicate) = match self.plan.rates_for(from, to) {
            Some(rates) => {
                let rates = rates.clone();
                let drop_u = self.rng.f64();
                let delay_u = self.rng.f64();
                let jitter = self.rng.next_u64();
                let dup_u = self.rng.f64();
                let extra = if delay_u < rates.delay_p {
                    SimTime::from_nanos(jitter % (rates.delay_max_ns + 1))
                } else {
                    SimTime::ZERO
                };
                (drop_u < rates.drop_p, extra, dup_u < rates.dup_p)
            }
            None => (false, SimTime::ZERO, false),
        };

        if self.plan.is_crashed(from, now) || self.plan.is_crashed(to, now) {
            self.counters.crash_drops += 1;
            return Verdict::Drop;
        }
        if self.plan.is_blacked_out(from, to, now) {
            self.counters.blackout_drops += 1;
            return Verdict::Drop;
        }
        if self
            .plan
            .drop_nth
            .iter()
            .any(|&(f, t, n)| f == from && t == to && n == send_ordinal)
        {
            self.counters.drops += 1;
            return Verdict::Drop;
        }
        if dropped_by_rate {
            self.counters.drops += 1;
            return Verdict::Drop;
        }
        if extra_delay > SimTime::ZERO {
            self.counters.delays += 1;
        }
        if duplicate {
            self.counters.dups += 1;
        }
        Verdict::Deliver {
            extra_delay,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn uniform_drop_is_active() {
        assert!(FaultPlan::uniform_drop(1, 0.01).is_active());
    }

    #[test]
    fn bad_probability_rejected() {
        let p = FaultPlan::uniform_drop(1, 1.5);
        assert!(p.validate().is_err());
    }

    #[test]
    fn empty_blackout_rejected() {
        let p = FaultPlan::none().with_blackout(
            KernelId(0),
            KernelId(1),
            SimTime::from_nanos(100),
            SimTime::from_nanos(100),
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn crash_query_respects_time() {
        let p = FaultPlan::none().with_crash(KernelId(2), SimTime::from_nanos(500));
        assert!(!p.is_crashed(KernelId(2), SimTime::from_nanos(499)));
        assert!(p.is_crashed(KernelId(2), SimTime::from_nanos(500)));
        assert!(!p.is_crashed(KernelId(0), SimTime::from_nanos(900)));
    }

    #[test]
    fn judge_is_deterministic() {
        let plan = FaultPlan::uniform_drop(42, 0.3);
        let run = || {
            let mut rt = FaultRuntime::new(plan.clone());
            (0..200)
                .map(|i| rt.judge(SimTime::from_nanos(i), KernelId(0), KernelId(1), i + 1))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drop_nth_hits_exactly_that_send() {
        let plan = FaultPlan::none().with_drop_nth(KernelId(0), KernelId(1), 3);
        let mut rt = FaultRuntime::new(plan);
        for i in 1..=5u64 {
            let v = rt.judge(SimTime::ZERO, KernelId(0), KernelId(1), i);
            if i == 3 {
                assert_eq!(v, Verdict::Drop);
            } else {
                assert!(matches!(v, Verdict::Deliver { .. }));
            }
        }
        // The reverse channel is untouched.
        let v = rt.judge(SimTime::ZERO, KernelId(1), KernelId(0), 3);
        assert!(matches!(v, Verdict::Deliver { .. }));
        assert_eq!(rt.counters.drops, 1);
    }

    #[test]
    fn blackout_window_is_half_open() {
        let plan = FaultPlan::none().with_blackout(
            KernelId(0),
            KernelId(1),
            SimTime::from_nanos(100),
            SimTime::from_nanos(200),
        );
        let mut rt = FaultRuntime::new(plan);
        let at = |ns| SimTime::from_nanos(ns);
        assert!(matches!(
            rt.judge(at(99), KernelId(0), KernelId(1), 1),
            Verdict::Deliver { .. }
        ));
        assert_eq!(
            rt.judge(at(100), KernelId(0), KernelId(1), 2),
            Verdict::Drop
        );
        assert_eq!(
            rt.judge(at(199), KernelId(0), KernelId(1), 3),
            Verdict::Drop
        );
        assert!(matches!(
            rt.judge(at(200), KernelId(0), KernelId(1), 4),
            Verdict::Deliver { .. }
        ));
        assert_eq!(rt.counters.blackout_drops, 2);
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let plan = FaultPlan::uniform_drop(7, 0.1);
        let mut rt = FaultRuntime::new(plan);
        let n = 20_000u64;
        let mut drops = 0;
        for i in 1..=n {
            if rt.judge(SimTime::ZERO, KernelId(0), KernelId(1), i) == Verdict::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "drop rate {rate} far from 0.1");
    }

    #[test]
    fn crashed_sender_loses_messages_both_ways() {
        let plan = FaultPlan::none().with_crash(KernelId(1), SimTime::from_nanos(10));
        let mut rt = FaultRuntime::new(plan);
        let at = SimTime::from_nanos(20);
        assert_eq!(rt.judge(at, KernelId(1), KernelId(0), 1), Verdict::Drop);
        assert_eq!(rt.judge(at, KernelId(0), KernelId(1), 1), Verdict::Drop);
        assert_eq!(rt.counters.crash_drops, 2);
    }
}
