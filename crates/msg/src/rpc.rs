//! Request/response correlation for the protocol layers.
//!
//! The migration, address-space and futex protocols are all
//! request/response: a kernel sends a request carrying an [`RpcId`] and
//! parks some continuation state until the matching response arrives. The
//! [`RpcTable`] owns that state; it is deliberately dumb — allocation,
//! matching and cancellation — so protocol logic stays in the protocol
//! crates.

use std::collections::HashMap;
use std::fmt;

use popcorn_sim::SimTime;

/// Correlation identifier carried inside request/response payloads. Unique
/// per [`RpcTable`] (i.e. per kernel), never reused within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RpcId(pub u64);

impl fmt::Display for RpcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rpc#{}", self.0)
    }
}

/// Outstanding-request table: maps an [`RpcId`] to the caller-defined
/// continuation value that the response handler needs.
///
/// # Example
///
/// ```
/// use popcorn_msg::RpcTable;
///
/// let mut table: RpcTable<&'static str> = RpcTable::new();
/// let id = table.register("waiting-for-page");
/// assert_eq!(table.outstanding(), 1);
/// assert_eq!(table.complete(id), Some("waiting-for-page"));
/// assert_eq!(table.complete(id), None); // already completed
/// ```
#[derive(Debug, Clone)]
pub struct RpcTable<C> {
    next: u64,
    pending: HashMap<RpcId, C>,
    /// Response deadlines for requests registered with one; entries are
    /// removed when the request completes (or is drained).
    deadlines: HashMap<RpcId, SimTime>,
}

impl<C> Default for RpcTable<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> RpcTable<C> {
    /// Creates an empty table.
    pub fn new() -> Self {
        RpcTable {
            next: 1,
            pending: HashMap::new(),
            deadlines: HashMap::new(),
        }
    }

    /// Allocates a fresh id and parks `continuation` under it.
    pub fn register(&mut self, continuation: C) -> RpcId {
        let id = RpcId(self.next);
        self.next += 1;
        self.pending.insert(id, continuation);
        id
    }

    /// Like [`RpcTable::register`], but records a response deadline. The
    /// caller is responsible for scheduling a timeout event at `deadline`
    /// and, when it fires, checking [`RpcTable::deadline`] / completing the
    /// request with a failure if it is still pending.
    pub fn register_with_deadline(&mut self, continuation: C, deadline: SimTime) -> RpcId {
        let id = self.register(continuation);
        self.deadlines.insert(id, deadline);
        id
    }

    /// The deadline recorded for a still-pending request, if any.
    pub fn deadline(&self, id: RpcId) -> Option<SimTime> {
        self.deadlines.get(&id).copied()
    }

    /// Completes a request, yielding its continuation; `None` if the id is
    /// unknown or already completed (duplicate response). Duplicate
    /// responses are therefore inherently idempotent: the first wins, the
    /// rest see `None` and must do nothing.
    pub fn complete(&mut self, id: RpcId) -> Option<C> {
        self.deadlines.remove(&id);
        self.pending.remove(&id)
    }

    /// Peeks at a pending continuation without completing it.
    pub fn get(&self, id: RpcId) -> Option<&C> {
        self.pending.get(&id)
    }

    /// Mutable peek at a pending continuation (for multi-response protocols
    /// that accumulate state before completing).
    pub fn get_mut(&mut self, id: RpcId) -> Option<&mut C> {
        self.pending.get_mut(&id)
    }

    /// Number of in-flight requests.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Drops all pending requests, returning their continuations in id
    /// order (used on kernel teardown so blocked tasks can be failed).
    pub fn drain(&mut self) -> Vec<(RpcId, C)> {
        self.deadlines.clear();
        let mut all: Vec<_> = self.pending.drain().collect();
        all.sort_unstable_by_key(|&(id, _)| id);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut t: RpcTable<u32> = RpcTable::new();
        let a = t.register(1);
        let b = t.register(2);
        let c = t.register(3);
        assert!(a < b && b < c);
    }

    #[test]
    fn complete_returns_continuation_once() {
        let mut t = RpcTable::new();
        let id = t.register("x");
        assert_eq!(t.complete(id), Some("x"));
        assert_eq!(t.complete(id), None);
    }

    #[test]
    fn unknown_id_completes_to_none() {
        let mut t: RpcTable<()> = RpcTable::new();
        assert_eq!(t.complete(RpcId(999)), None);
    }

    #[test]
    fn get_mut_allows_accumulation() {
        let mut t = RpcTable::new();
        let id = t.register(vec![1]);
        t.get_mut(id).unwrap().push(2);
        assert_eq!(t.complete(id), Some(vec![1, 2]));
    }

    #[test]
    fn ids_not_reused_after_completion() {
        let mut t: RpcTable<()> = RpcTable::new();
        let a = t.register(());
        t.complete(a);
        let b = t.register(());
        assert_ne!(a, b);
    }

    #[test]
    fn deadline_is_stored_and_cleared_on_complete() {
        let mut t = RpcTable::new();
        let plain = t.register("no-deadline");
        let dl = SimTime::from_nanos(5_000);
        let timed = t.register_with_deadline("timed", dl);
        assert_eq!(t.deadline(plain), None);
        assert_eq!(t.deadline(timed), Some(dl));
        assert_eq!(t.complete(timed), Some("timed"));
        assert_eq!(t.deadline(timed), None);
        // A duplicate (late) response after the deadline bookkeeping is
        // still idempotent.
        assert_eq!(t.complete(timed), None);
    }

    #[test]
    fn duplicate_responses_are_idempotent_with_deadlines() {
        // The reliability layer relies on this: a retransmitted response
        // completing twice must be a no-op the second time.
        let mut t = RpcTable::new();
        let id = t.register_with_deadline(7u32, SimTime::from_nanos(100));
        assert_eq!(t.complete(id), Some(7));
        for _ in 0..3 {
            assert_eq!(t.complete(id), None);
        }
    }

    #[test]
    fn drain_clears_deadlines() {
        let mut t = RpcTable::new();
        let id = t.register_with_deadline((), SimTime::from_nanos(9));
        let _ = t.drain();
        assert_eq!(t.deadline(id), None);
    }

    #[test]
    fn drain_returns_in_id_order() {
        let mut t = RpcTable::new();
        let ids: Vec<_> = (0..5).map(|i| t.register(i)).collect();
        t.complete(ids[2]);
        let drained = t.drain();
        assert_eq!(drained.len(), 4);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(t.outstanding(), 0);
    }
}
