//! The message fabric: per-ordered-pair FIFO channels between kernels.

use std::collections::HashMap;
use std::fmt;

use popcorn_hw::{CoreId, Machine};
use popcorn_sim::{Counter, Histogram, SimTime};

use crate::params::MsgParams;

/// Identifier of a kernel instance within one machine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct KernelId(pub u16);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel{}", self.0)
    }
}

/// Byte-size accounting for payloads: how many bytes the message occupies on
/// the shared-memory ring, which drives the transmit-time cost.
pub trait Wire {
    /// Serialized size in bytes (headers excluded; the fabric adds a fixed
    /// 64-byte envelope line).
    fn wire_size(&self) -> usize;
}

/// A message accepted by the fabric: the payload plus the virtual time at
/// which the receiving kernel's handler runs. The OS model schedules a
/// simulation event at `deliver_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Sender.
    pub from: KernelId,
    /// Receiver.
    pub to: KernelId,
    /// When the receive-side handler completes demux and may act.
    pub deliver_at: SimTime,
    /// Time the sending CPU was busy in the send path.
    pub send_busy: SimTime,
    /// The payload, returned by value for the OS model to route.
    pub payload: P,
}

/// Per-ordered-pair channel state.
#[derive(Debug, Clone, Default)]
struct Channel {
    /// When the ring accepts the next message (transmit serialization).
    tx_free_at: SimTime,
    /// FIFO guarantee: no later message may be delivered before this.
    last_delivery: SimTime,
    sends: Counter,
    bytes: Counter,
    queue_delay: Histogram,
}

/// The inter-kernel message fabric.
///
/// Channels are created lazily per ordered kernel pair. Messages on one
/// channel are FIFO; channels are independent (per-pair rings, as in
/// Popcorn's implementation). See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Fabric {
    params: MsgParams,
    /// Representative core of each kernel (where its message handler runs);
    /// indexes by `KernelId`.
    locations: Vec<CoreId>,
    /// Hop latency between kernel pairs, precomputed from the interconnect.
    hop: Vec<SimTime>,
    /// IPI notification latency (or expected polling delay).
    notify: SimTime,
    channels: HashMap<(KernelId, KernelId), Channel>,
    total_sends: Counter,
    latency_hist: Histogram,
}

impl Fabric {
    /// Builds a fabric for kernels whose message handlers run on the given
    /// representative cores (one per kernel, indexed by [`KernelId`]).
    ///
    /// # Panics
    ///
    /// Panics if `locations` is empty, contains an out-of-range core, or the
    /// parameters fail validation.
    pub fn new(machine: &Machine, locations: Vec<CoreId>, params: MsgParams) -> Self {
        assert!(!locations.is_empty(), "need at least one kernel location");
        params.validate().expect("invalid message parameters");
        let topo = machine.topology();
        for &c in &locations {
            assert!(topo.contains(c), "kernel location {c} not in topology");
        }
        let n = locations.len();
        let mut hop = vec![SimTime::ZERO; n * n];
        for (i, &a) in locations.iter().enumerate() {
            for (j, &b) in locations.iter().enumerate() {
                hop[i * n + j] = machine.interconnect().core_to_core(a, b);
            }
        }
        let notify = if params.ipi_notify {
            machine.shootdown().ipi_latency() + machine.shootdown().ipi_handler_cost()
        } else {
            SimTime::from_nanos(params.poll_interval_ns / 2)
        };
        Fabric {
            params,
            locations,
            hop,
            notify,
            channels: HashMap::new(),
            total_sends: Counter::new(),
            latency_hist: Histogram::new(),
        }
    }

    /// Number of kernels the fabric connects.
    pub fn num_kernels(&self) -> usize {
        self.locations.len()
    }

    /// The representative core of a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn location(&self, k: KernelId) -> CoreId {
        self.locations[k.0 as usize]
    }

    fn hop_latency(&self, from: KernelId, to: KernelId) -> SimTime {
        let n = self.locations.len();
        self.hop[from.0 as usize * n + to.0 as usize]
    }

    /// Sends `payload` from `from` to `to` at virtual time `now`; returns the
    /// delivery record whose `deliver_at` the OS model schedules.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (kernels do not message themselves — local
    /// operations take the function-call path) or either id is out of range.
    pub fn send<P: Wire>(&mut self, now: SimTime, from: KernelId, to: KernelId, payload: P) -> Delivery<P> {
        assert_ne!(from, to, "kernel cannot message itself");
        assert!((from.0 as usize) < self.locations.len(), "{from} out of range");
        assert!((to.0 as usize) < self.locations.len(), "{to} out of range");

        let size = payload.wire_size();
        // One envelope line plus the payload, rounded up to cache lines.
        let lines = 1 + (size as u64).div_ceil(64);
        let tx_time = SimTime::from_nanos(self.params.send_sw_ns + lines * self.params.per_line_ns);
        let hop = self.hop_latency(from, to);
        let recv = SimTime::from_nanos(self.params.recv_sw_ns);
        let notify = self.notify;

        let ch = self.channels.entry((from, to)).or_default();
        let tx_start = now.max(ch.tx_free_at);
        let queue_delay = tx_start - now;
        let tx_done = tx_start + tx_time;
        ch.tx_free_at = tx_done;
        // Notification, flight and receive processing; FIFO per channel.
        let deliver_at = (tx_done + hop + notify + recv).max(ch.last_delivery);
        ch.last_delivery = deliver_at;
        ch.sends.incr();
        ch.bytes.add(lines * 64);
        ch.queue_delay.record_time(queue_delay);
        self.total_sends.incr();
        self.latency_hist.record_time(deliver_at - now);

        Delivery {
            from,
            to,
            deliver_at,
            send_busy: tx_done - now,
            payload,
        }
    }

    /// Sends a clone of `payload` to every other kernel; returns deliveries
    /// in kernel-id order.
    pub fn broadcast<P: Wire + Clone>(
        &mut self,
        now: SimTime,
        from: KernelId,
        payload: P,
    ) -> Vec<Delivery<P>> {
        (0..self.locations.len() as u16)
            .map(KernelId)
            .filter(|&k| k != from)
            .map(|k| self.send(now, from, k, payload.clone()))
            .collect()
    }

    /// Total messages sent across all channels.
    pub fn total_sends(&self) -> u64 {
        self.total_sends.get()
    }

    /// Distribution of end-to-end message latency (send call to handler
    /// completion).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Per-channel totals `(from, to, sends, bytes)` in deterministic order.
    pub fn channel_stats(&self) -> Vec<(KernelId, KernelId, u64, u64)> {
        let mut rows: Vec<_> = self
            .channels
            .iter()
            .map(|(&(f, t), ch)| (f, t, ch.sends.get(), ch.bytes.get()))
            .collect();
        rows.sort_unstable_by_key(|&(f, t, _, _)| (f, t));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popcorn_hw::{HwParams, Topology};

    struct Blob(usize);
    impl Wire for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    fn fabric(kernels: u16) -> Fabric {
        let machine = Machine::new(Topology::new(2, 4), HwParams::default());
        // Spread kernels across cores 0, 4 (cross-socket for k=2).
        let locs: Vec<CoreId> = match kernels {
            2 => vec![CoreId(0), CoreId(4)],
            4 => vec![CoreId(0), CoreId(2), CoreId(4), CoreId(6)],
            _ => (0..kernels).map(CoreId).collect(),
        };
        Fabric::new(&machine, locs, MsgParams::default())
    }

    #[test]
    fn small_message_is_microsecond_scale() {
        let mut f = fabric(2);
        let d = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let us = d.deliver_at.as_micros_f64();
        assert!((1.0..10.0).contains(&us), "latency {us}us out of expected band");
    }

    #[test]
    fn bigger_payloads_take_longer() {
        let mut f = fabric(2);
        let small = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let mut f2 = fabric(2);
        let big = f2.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(4096));
        assert!(big.deliver_at > small.deliver_at);
    }

    #[test]
    fn channel_serializes_sends_fifo() {
        let mut f = fabric(2);
        let d1 = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(4096));
        let d2 = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        assert!(d2.deliver_at >= d1.deliver_at, "FIFO violated");
        // The second message queued behind the first's transmission.
        assert!(d2.send_busy > SimTime::ZERO);
    }

    #[test]
    fn independent_channels_do_not_interfere() {
        let mut f = fabric(4);
        let d1 = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(4096));
        let d2 = f.send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(4096));
        // Same shape, started simultaneously on disjoint pairs.
        assert_eq!(
            d1.deliver_at.as_nanos() > 0,
            d2.deliver_at.as_nanos() > 0
        );
        let d3 = f.send(SimTime::ZERO, KernelId(1), KernelId(0), Blob(64));
        // Reverse direction is a separate ring: no queueing behind 0→1.
        let mut fresh = fabric(4);
        let base = fresh.send(SimTime::ZERO, KernelId(1), KernelId(0), Blob(64));
        assert_eq!(d3.deliver_at, base.deliver_at);
    }

    #[test]
    #[should_panic(expected = "cannot message itself")]
    fn self_send_rejected() {
        fabric(2).send(SimTime::ZERO, KernelId(0), KernelId(0), Blob(1));
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let mut f = fabric(4);
        #[derive(Clone)]
        struct B;
        impl Wire for B {
            fn wire_size(&self) -> usize {
                32
            }
        }
        let ds = f.broadcast(SimTime::ZERO, KernelId(1), B);
        let tos: Vec<u16> = ds.iter().map(|d| d.to.0).collect();
        assert_eq!(tos, vec![0, 2, 3]);
        assert_eq!(f.total_sends(), 3);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric(2);
        f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        f.send(SimTime::ZERO, KernelId(1), KernelId(0), Blob(64));
        assert_eq!(f.total_sends(), 2);
        assert_eq!(f.latency_histogram().count(), 2);
        let rows = f.channel_stats();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, KernelId(0));
        assert_eq!(rows[0].2, 1);
    }

    #[test]
    fn polling_mode_uses_poll_delay() {
        let machine = Machine::new(Topology::new(1, 2), HwParams::default());
        let params = MsgParams {
            ipi_notify: false,
            poll_interval_ns: 100_000,
            ..MsgParams::default()
        };
        let mut f = Fabric::new(&machine, vec![CoreId(0), CoreId(1)], params);
        let d = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        // Expected poll delay (50us) dominates.
        assert!(d.deliver_at.as_nanos() > 50_000);
    }

    #[test]
    fn send_busy_is_send_side_only() {
        let mut f = fabric(2);
        let d = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        assert!(d.send_busy < d.deliver_at);
        assert!(d.send_busy >= SimTime::from_nanos(MsgParams::default().send_sw_ns));
    }
}
