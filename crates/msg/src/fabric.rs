//! The message fabric: per-ordered-pair FIFO channels between kernels.

use std::collections::HashMap;
use std::fmt;

use popcorn_hw::{CoreId, Machine};
use popcorn_sim::stats::Summary;
use popcorn_sim::{Counter, Histogram, SimTime};

use crate::fault::{Crash, FaultCounters, FaultRuntime, Verdict};
use crate::params::MsgParams;

/// Identifier of a kernel instance within one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KernelId(pub u16);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel{}", self.0)
    }
}

/// Byte-size accounting for payloads: how many bytes the message occupies on
/// the shared-memory ring, which drives the transmit-time cost.
pub trait Wire {
    /// Serialized size in bytes (headers excluded; the fabric adds a fixed
    /// 64-byte envelope line).
    fn wire_size(&self) -> usize;
}

/// A message accepted by the fabric: the payload plus the virtual time at
/// which the receiving kernel's handler runs. The OS model schedules a
/// simulation event at `deliver_at`.
#[must_use = "an unscheduled Delivery is a silently lost message"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery<P> {
    /// Sender.
    pub from: KernelId,
    /// Receiver.
    pub to: KernelId,
    /// When the receive-side handler completes demux and may act.
    pub deliver_at: SimTime,
    /// Time the sending CPU was busy in the send path.
    pub send_busy: SimTime,
    /// The payload, returned by value for the OS model to route.
    pub payload: P,
}

/// What the fabric did with a send.
///
/// With the default [`FaultPlan::none()`](crate::fault::FaultPlan::none)
/// every send is `Delivered` with no duplicate; [`SendOutcome::expect_delivered`]
/// is the ergonomic unwrap for code that runs fault-free. Under an active
/// fault plan a message may be `Dropped` — the sender has still paid the
/// full send cost, and gets the payload back so a reliability layer can
/// retransmit it.
#[must_use = "ignoring a SendOutcome loses the message (and its payload) silently"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome<P> {
    /// The message will arrive.
    Delivered {
        /// The delivery record whose `deliver_at` the OS model schedules.
        delivery: Delivery<P>,
        /// When fault injection duplicated the message: the (later) arrival
        /// time of the second copy. The OS model schedules a second event
        /// with a clone of the payload.
        duplicate_at: Option<SimTime>,
    },
    /// Fault injection lost the message in flight; the payload comes back
    /// to the sender for possible retransmission.
    Dropped {
        /// The payload, returned to the sender.
        payload: P,
        /// Time the sending CPU was busy (the send cost is paid either way).
        send_busy: SimTime,
    },
}

impl<P> SendOutcome<P> {
    /// Unwraps the delivery, discarding any duplicate arrival time.
    ///
    /// # Panics
    ///
    /// Panics if the message was dropped — only call this on fabrics with
    /// no active fault plan.
    pub fn expect_delivered(self) -> Delivery<P> {
        match self {
            SendOutcome::Delivered { delivery, .. } => delivery,
            SendOutcome::Dropped { .. } => {
                panic!("message dropped by fault injection; caller assumed reliable fabric")
            }
        }
    }

    /// The delivery record, if the message was not dropped.
    pub fn delivered(self) -> Option<Delivery<P>> {
        match self {
            SendOutcome::Delivered { delivery, .. } => Some(delivery),
            SendOutcome::Dropped { .. } => None,
        }
    }

    /// Whether the message will arrive.
    pub fn was_delivered(&self) -> bool {
        matches!(self, SendOutcome::Delivered { .. })
    }

    /// Send-side CPU busy time (paid whether or not the message survives).
    pub fn send_busy(&self) -> SimTime {
        match self {
            SendOutcome::Delivered { delivery, .. } => delivery.send_busy,
            SendOutcome::Dropped { send_busy, .. } => *send_busy,
        }
    }
}

/// Per-ordered-pair channel state.
#[derive(Debug, Clone, Default)]
struct Channel {
    /// When the ring accepts the next message (transmit serialization).
    tx_free_at: SimTime,
    /// FIFO guarantee: no later message may be delivered before this.
    last_delivery: SimTime,
    sends: Counter,
    bytes: Counter,
    queue_delay: Histogram,
}

/// The inter-kernel message fabric.
///
/// Channels are created lazily per ordered kernel pair. Messages on one
/// channel are FIFO; channels are independent (per-pair rings, as in
/// Popcorn's implementation). See the [crate-level example](crate).
///
/// A [`FaultPlan`](crate::fault::FaultPlan) in [`MsgParams`] makes the
/// fabric lossy: sends may be dropped, delayed or duplicated,
/// deterministically from the plan's seed. The default plan injects nothing
/// and adds no work to the send path.
#[derive(Debug, Clone)]
pub struct Fabric {
    params: MsgParams,
    /// Representative core of each kernel (where its message handler runs);
    /// indexes by `KernelId`.
    locations: Vec<CoreId>,
    /// Hop latency between kernel pairs, precomputed from the interconnect.
    hop: Vec<SimTime>,
    /// Minimum hop latency over all distinct kernel pairs, cached at
    /// construction (single-kernel fabrics have no pairs: zero). Consumers
    /// needing the conservative-parallel-DES lookahead use
    /// [`Fabric::lookahead`], which adds the fixed send/notify/receive
    /// software floors.
    min_hop: SimTime,
    /// IPI notification latency (or expected polling delay).
    notify: SimTime,
    channels: HashMap<(KernelId, KernelId), Channel>,
    total_sends: Counter,
    latency_hist: Histogram,
    /// Present iff the fault plan is active.
    faults: Option<FaultRuntime>,
}

impl Fabric {
    /// Builds a fabric for kernels whose message handlers run on the given
    /// representative cores (one per kernel, indexed by [`KernelId`]).
    ///
    /// # Panics
    ///
    /// Panics if `locations` is empty, contains an out-of-range core, or the
    /// parameters fail validation.
    pub fn new(machine: &Machine, locations: Vec<CoreId>, params: MsgParams) -> Self {
        assert!(!locations.is_empty(), "need at least one kernel location");
        params.validate().expect("invalid message parameters");
        let topo = machine.topology();
        for &c in &locations {
            assert!(topo.contains(c), "kernel location {c} not in topology");
        }
        let n = locations.len();
        let mut hop = vec![SimTime::ZERO; n * n];
        let mut min_hop = SimTime::MAX;
        for (i, &a) in locations.iter().enumerate() {
            for (j, &b) in locations.iter().enumerate() {
                hop[i * n + j] = machine.interconnect().core_to_core(a, b);
                if i != j {
                    min_hop = min_hop.min(hop[i * n + j]);
                }
            }
        }
        if n == 1 {
            min_hop = SimTime::ZERO;
        }
        let notify = if params.ipi_notify {
            machine.shootdown().ipi_latency() + machine.shootdown().ipi_handler_cost()
        } else {
            SimTime::from_nanos(params.poll_interval_ns / 2)
        };
        let faults = if params.faults.is_active() {
            Some(FaultRuntime::new(params.faults.clone()))
        } else {
            None
        };
        Fabric {
            params,
            locations,
            hop,
            min_hop,
            notify,
            channels: HashMap::new(),
            total_sends: Counter::new(),
            latency_hist: Histogram::new(),
            faults,
        }
    }

    /// Number of kernels the fabric connects.
    pub fn num_kernels(&self) -> usize {
        self.locations.len()
    }

    /// The representative core of a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn location(&self, k: KernelId) -> CoreId {
        self.locations[k.0 as usize]
    }

    fn hop_latency(&self, from: KernelId, to: KernelId) -> SimTime {
        let n = self.locations.len();
        self.hop[from.0 as usize * n + to.0 as usize]
    }

    /// Minimum hop latency over all distinct kernel pairs, cached at
    /// construction. Zero for single-kernel fabrics (no pairs).
    pub fn min_hop_latency(&self) -> SimTime {
        self.min_hop
    }

    /// The conservative-parallel-DES lookahead: a lower bound on the
    /// delivery latency of *any* cross-kernel message. No send can be seen
    /// by its receiver earlier than `send time + lookahead`, so partitions
    /// of a parallel simulation may safely advance `lookahead` past the
    /// global minimum next-event time between synchronizations.
    ///
    /// Derivation: every send pays at least the send-software cost plus one
    /// envelope cache line on the ring, the minimum inter-kernel hop, the
    /// notification latency (IPI or expected polling delay), and the
    /// receive-software cost. Fault injection only ever *adds* delay
    /// (`extra_delay >= 0`) and the per-channel FIFO floor only pushes
    /// deliveries later, so this floor also holds under an active plan.
    ///
    /// # Panics
    ///
    /// Panics if the fabric connects more than one kernel and the derived
    /// lookahead is zero — a zero lookahead would make conservative
    /// parallel windows empty, and cannot happen with validated parameters
    /// (the software costs alone are positive).
    pub fn lookahead(&self) -> SimTime {
        let floor = SimTime::from_nanos(self.params.send_sw_ns + self.params.per_line_ns)
            + self.min_hop
            + self.notify
            + SimTime::from_nanos(self.params.recv_sw_ns);
        assert!(
            self.locations.len() < 2 || !floor.is_zero(),
            "multi-kernel fabric must have a positive lookahead"
        );
        floor
    }

    /// Folds the traffic recorded by `shard` — a fabric that started as a
    /// pristine clone of this one and carried a disjoint subset of the
    /// sender channels — back into this fabric, so post-run reporting sees
    /// exactly what a single fabric carrying all the traffic would have.
    ///
    /// # Panics
    ///
    /// Panics if `shard` holds a channel this fabric (or a previously
    /// absorbed shard) also holds: overlapping channels mean two partitions
    /// both sent on the same ordered kernel pair, which violates the
    /// partitioning contract (each partition sends only from its own
    /// kernels).
    pub fn absorb_shard(&mut self, shard: Fabric) {
        self.total_sends.add(shard.total_sends.get());
        self.latency_hist.merge(&shard.latency_hist);
        for (key, ch) in shard.channels {
            let clash = self.channels.insert(key, ch);
            assert!(
                clash.is_none(),
                "channel {}->{} recorded by two partitions",
                key.0,
                key.1
            );
        }
    }

    /// Sends `payload` from `from` to `to` at virtual time `now`; returns
    /// what the (possibly faulty) fabric did with it. Send-side costs —
    /// transmit serialization, ring bytes, CPU busy time — are paid whether
    /// or not the message survives; faults strike in flight.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (kernels do not message themselves — local
    /// operations take the function-call path) or either id is out of range.
    pub fn send<P: Wire>(
        &mut self,
        now: SimTime,
        from: KernelId,
        to: KernelId,
        payload: P,
    ) -> SendOutcome<P> {
        assert_ne!(from, to, "kernel cannot message itself");
        assert!(
            (from.0 as usize) < self.locations.len(),
            "{from} out of range"
        );
        assert!((to.0 as usize) < self.locations.len(), "{to} out of range");

        let size = payload.wire_size();
        // One envelope line plus the payload, rounded up to cache lines.
        let lines = 1 + (size as u64).div_ceil(64);
        let tx_time = SimTime::from_nanos(self.params.send_sw_ns + lines * self.params.per_line_ns);
        let hop = self.hop_latency(from, to);
        let recv = SimTime::from_nanos(self.params.recv_sw_ns);
        let notify = self.notify;

        let ch = self.channels.entry((from, to)).or_default();
        let tx_start = now.max(ch.tx_free_at);
        let queue_delay = tx_start - now;
        let tx_done = tx_start + tx_time;
        ch.tx_free_at = tx_done;
        ch.sends.incr();
        ch.bytes.add(lines * 64);
        ch.queue_delay.record_time(queue_delay);
        self.total_sends.incr();

        // Fault verdict. `None` (the default plan) does no work at all, so
        // the zero-fault path is identical to a fabric without injection.
        let verdict = match self.faults.as_mut() {
            Some(rt) => rt.judge(now, from, to, ch.sends.get()),
            None => Verdict::Deliver {
                extra_delay: SimTime::ZERO,
                duplicate: false,
            },
        };
        let (extra_delay, duplicate) = match verdict {
            Verdict::Drop => {
                // Lost in flight: no delivery, no FIFO floor update — the
                // receiver never sees it.
                return SendOutcome::Dropped {
                    payload,
                    send_busy: tx_done - now,
                };
            }
            Verdict::Deliver {
                extra_delay,
                duplicate,
            } => (extra_delay, duplicate),
        };

        // Notification, flight and receive processing; FIFO per channel.
        let deliver_at = (tx_done + hop + notify + recv + extra_delay).max(ch.last_delivery);
        ch.last_delivery = deliver_at;
        // A duplicate is re-delivered one receive-path later; it extends the
        // channel's FIFO floor so later messages stay ordered behind it.
        let duplicate_at = if duplicate {
            let dup_at = deliver_at + recv;
            ch.last_delivery = dup_at;
            Some(dup_at)
        } else {
            None
        };
        self.latency_hist.record_time(deliver_at - now);

        SendOutcome::Delivered {
            delivery: Delivery {
                from,
                to,
                deliver_at,
                send_busy: tx_done - now,
                payload,
            },
            duplicate_at,
        }
    }

    /// Sends a clone of `payload` to every other kernel (the payload itself
    /// is moved into the final send: N−1 clones for N−1 recipients);
    /// returns outcomes in kernel-id order.
    pub fn broadcast<P: Wire + Clone>(
        &mut self,
        now: SimTime,
        from: KernelId,
        payload: P,
    ) -> Vec<SendOutcome<P>> {
        let targets: Vec<KernelId> = (0..self.locations.len() as u16)
            .map(KernelId)
            .filter(|&k| k != from)
            .collect();
        let mut payload = Some(payload);
        let last = targets.len().saturating_sub(1);
        targets
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let p = if i == last {
                    payload.take().expect("payload moved before final send")
                } else {
                    payload.as_ref().expect("payload still held").clone()
                };
                self.send(now, from, k, p)
            })
            .collect()
    }

    /// Total messages sent across all channels (including dropped ones —
    /// the send happened; the loss was in flight).
    pub fn total_sends(&self) -> u64 {
        self.total_sends.get()
    }

    /// Distribution of end-to-end message latency (send call to handler
    /// completion) over messages that were actually delivered.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Per-channel totals `(from, to, sends, bytes)` in deterministic order.
    pub fn channel_stats(&self) -> Vec<(KernelId, KernelId, u64, u64)> {
        let mut rows: Vec<_> = self
            .channels
            .iter()
            .map(|(&(f, t), ch)| (f, t, ch.sends.get(), ch.bytes.get()))
            .collect();
        rows.sort_unstable_by_key(|&(f, t, _, _)| (f, t));
        rows
    }

    /// Per-channel transmit-queue delay summaries `(from, to, summary)` in
    /// deterministic order: how long sends waited for the ring behind
    /// earlier transmissions.
    pub fn queue_delay_stats(&self) -> Vec<(KernelId, KernelId, Summary)> {
        let mut rows: Vec<_> = self
            .channels
            .iter()
            .map(|(&(f, t), ch)| (f, t, ch.queue_delay.summary()))
            .collect();
        rows.sort_unstable_by_key(|&(f, t, _)| (f, t));
        rows
    }

    /// Transmit-queue delay over all channels merged into one histogram.
    pub fn queue_delay_histogram(&self) -> Histogram {
        let mut all = Histogram::new();
        let mut keys: Vec<_> = self.channels.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            all.merge(&self.channels[&k].queue_delay);
        }
        all
    }

    /// Injected-fault tallies (all zero when no plan is active).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(|rt| rt.counters)
            .unwrap_or_default()
    }

    /// Whether a fault plan is active on this fabric.
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// Whether the fault plan says `kernel` has crashed by `now`. Always
    /// false without an active plan.
    pub fn is_crashed(&self, kernel: KernelId, now: SimTime) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|rt| rt.plan.is_crashed(kernel, now))
    }

    /// The fault plan's scripted kernel crashes (empty without an active
    /// plan). Recovery layers use this to schedule detection timers.
    pub fn planned_crashes(&self) -> &[Crash] {
        self.faults
            .as_ref()
            .map_or(&[], |rt| rt.plan.crashes.as_slice())
    }

    /// Whether the fault plan blacks out the directed channel `from → to`
    /// at `now`. Always false without an active plan.
    pub fn is_blacked_out(&self, from: KernelId, to: KernelId, now: SimTime) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|rt| rt.plan.is_blacked_out(from, to, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use popcorn_hw::{HwParams, Topology};

    struct Blob(usize);
    impl Wire for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    fn fabric(kernels: u16) -> Fabric {
        fabric_with(kernels, MsgParams::default())
    }

    fn fabric_with(kernels: u16, params: MsgParams) -> Fabric {
        let machine = Machine::new(Topology::new(2, 4), HwParams::default());
        // Spread kernels across cores 0, 4 (cross-socket for k=2).
        let locs: Vec<CoreId> = match kernels {
            2 => vec![CoreId(0), CoreId(4)],
            4 => vec![CoreId(0), CoreId(2), CoreId(4), CoreId(6)],
            _ => (0..kernels).map(CoreId).collect(),
        };
        Fabric::new(&machine, locs, params)
    }

    #[test]
    fn small_message_is_microsecond_scale() {
        let mut f = fabric(2);
        let d = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        let us = d.deliver_at.as_micros_f64();
        assert!(
            (1.0..10.0).contains(&us),
            "latency {us}us out of expected band"
        );
    }

    #[test]
    fn bigger_payloads_take_longer() {
        let mut f = fabric(2);
        let small = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        let mut f2 = fabric(2);
        let big = f2
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(4096))
            .expect_delivered();
        assert!(big.deliver_at > small.deliver_at);
    }

    #[test]
    fn channel_serializes_sends_fifo() {
        let mut f = fabric(2);
        let d1 = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(4096))
            .expect_delivered();
        let d2 = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        assert!(d2.deliver_at >= d1.deliver_at, "FIFO violated");
        // The second message queued behind the first's transmission.
        assert!(d2.send_busy > SimTime::ZERO);
    }

    #[test]
    fn independent_channels_do_not_interfere() {
        let mut f = fabric(4);
        let d1 = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(4096))
            .expect_delivered();
        let d2 = f
            .send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(4096))
            .expect_delivered();
        // Same shape, started simultaneously on disjoint pairs.
        assert_eq!(d1.deliver_at.as_nanos() > 0, d2.deliver_at.as_nanos() > 0);
        let d3 = f
            .send(SimTime::ZERO, KernelId(1), KernelId(0), Blob(64))
            .expect_delivered();
        // Reverse direction is a separate ring: no queueing behind 0→1.
        let mut fresh = fabric(4);
        let base = fresh
            .send(SimTime::ZERO, KernelId(1), KernelId(0), Blob(64))
            .expect_delivered();
        assert_eq!(d3.deliver_at, base.deliver_at);
    }

    #[test]
    #[should_panic(expected = "cannot message itself")]
    fn self_send_rejected() {
        let _ = fabric(2).send(SimTime::ZERO, KernelId(0), KernelId(0), Blob(1));
    }

    #[derive(Clone)]
    struct B;
    impl Wire for B {
        fn wire_size(&self) -> usize {
            32
        }
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let mut f = fabric(4);
        let ds = f.broadcast(SimTime::ZERO, KernelId(1), B);
        let tos: Vec<u16> = ds.into_iter().map(|o| o.expect_delivered().to.0).collect();
        assert_eq!(tos, vec![0, 2, 3]);
        assert_eq!(f.total_sends(), 3);
    }

    #[test]
    fn broadcast_matches_individual_sends_exactly() {
        // The move-the-last-payload restructuring must not change delivery
        // order or timing relative to sending one clone per recipient.
        let mut a = fabric(4);
        let via_broadcast: Vec<Delivery<B>> = a
            .broadcast(SimTime::ZERO, KernelId(1), B)
            .into_iter()
            .map(SendOutcome::expect_delivered)
            .collect();
        let mut b = fabric(4);
        let via_sends: Vec<Delivery<B>> = [0u16, 2, 3]
            .iter()
            .map(|&k| {
                b.send(SimTime::ZERO, KernelId(1), KernelId(k), B)
                    .expect_delivered()
            })
            .collect();
        for (x, y) in via_broadcast.iter().zip(&via_sends) {
            assert_eq!(x.to, y.to);
            assert_eq!(x.deliver_at, y.deliver_at);
            assert_eq!(x.send_busy, y.send_busy);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric(2);
        let _ = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let _ = f.send(SimTime::ZERO, KernelId(1), KernelId(0), Blob(64));
        assert_eq!(f.total_sends(), 2);
        assert_eq!(f.latency_histogram().count(), 2);
        let rows = f.channel_stats();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, KernelId(0));
        assert_eq!(rows[0].2, 1);
    }

    #[test]
    fn queue_delay_is_exposed() {
        let mut f = fabric(2);
        // Two back-to-back sends: the second waits for the ring.
        let _ = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(4096));
        let _ = f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let rows = f.queue_delay_stats();
        assert_eq!(rows.len(), 1);
        let (from, to, s) = &rows[0];
        assert_eq!((*from, *to), (KernelId(0), KernelId(1)));
        assert_eq!(s.count, 2);
        assert!(s.max > 0, "second send should have queued");
        let merged = f.queue_delay_histogram();
        assert_eq!(merged.count(), 2);
    }

    #[test]
    fn polling_mode_uses_poll_delay() {
        let machine = Machine::new(Topology::new(1, 2), HwParams::default());
        let params = MsgParams {
            ipi_notify: false,
            poll_interval_ns: 100_000,
            ..MsgParams::default()
        };
        let mut f = Fabric::new(&machine, vec![CoreId(0), CoreId(1)], params);
        let d = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        // Expected poll delay (50us) dominates.
        assert!(d.deliver_at.as_nanos() > 50_000);
    }

    #[test]
    fn send_busy_is_send_side_only() {
        let mut f = fabric(2);
        let d = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        assert!(d.send_busy < d.deliver_at);
        assert!(d.send_busy >= SimTime::from_nanos(MsgParams::default().send_sw_ns));
    }

    #[test]
    fn zero_fault_plan_is_byte_identical() {
        let mut plain = fabric(2);
        let mut none_plan = fabric_with(
            2,
            MsgParams {
                faults: FaultPlan::none(),
                ..MsgParams::default()
            },
        );
        assert!(!none_plan.faults_active());
        for i in 0..50u64 {
            let now = SimTime::from_nanos(i * 700);
            let a = plain.send(now, KernelId(0), KernelId(1), Blob(64 + i as usize));
            let b = none_plan.send(now, KernelId(0), KernelId(1), Blob(64 + i as usize));
            let (a, b) = (a.expect_delivered(), b.expect_delivered());
            assert_eq!(a.deliver_at, b.deliver_at);
            assert_eq!(a.send_busy, b.send_busy);
        }
        assert_eq!(
            plain.latency_histogram().count(),
            none_plan.latency_histogram().count()
        );
    }

    #[test]
    fn scripted_drop_returns_payload_and_pays_send_cost() {
        let params = MsgParams {
            faults: FaultPlan::none().with_drop_nth(KernelId(0), KernelId(1), 2),
            ..MsgParams::default()
        };
        let mut f = fabric_with(2, params);
        let _ = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        match f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64)) {
            SendOutcome::Dropped { payload, send_busy } => {
                assert_eq!(payload.0, 64);
                assert!(send_busy > SimTime::ZERO);
            }
            SendOutcome::Delivered { .. } => panic!("second send should drop"),
        }
        // The send happened (counters), the delivery did not (latency).
        assert_eq!(f.total_sends(), 2);
        assert_eq!(f.latency_histogram().count(), 1);
        assert_eq!(f.fault_counters().drops, 1);
        // The channel is not wedged: the third send goes through.
        let _ = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
    }

    #[test]
    fn duplicate_arrives_later_and_keeps_fifo() {
        use crate::fault::ChannelFaults;
        let params = MsgParams {
            faults: FaultPlan {
                seed: 3,
                uniform: Some(ChannelFaults {
                    drop_p: 0.0,
                    dup_p: 1.0,
                    delay_p: 0.0,
                    delay_max_ns: 0,
                }),
                ..FaultPlan::none()
            },
            ..MsgParams::default()
        };
        let mut f = fabric_with(2, params);
        let (first_at, dup_at) = match f.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64)) {
            SendOutcome::Delivered {
                delivery,
                duplicate_at,
            } => (delivery.deliver_at, duplicate_at.expect("dup_p = 1")),
            SendOutcome::Dropped { .. } => panic!("drop_p = 0"),
        };
        assert!(dup_at > first_at);
        // A later message on the channel stays FIFO behind the duplicate.
        let next = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        assert!(next.deliver_at >= dup_at);
        // Both sends duplicated (dup_p = 1).
        assert_eq!(f.fault_counters().dups, 2);
    }

    #[test]
    fn crashed_kernel_loses_all_traffic() {
        let params = MsgParams {
            faults: FaultPlan::none().with_crash(KernelId(1), SimTime::from_nanos(1_000)),
            ..MsgParams::default()
        };
        let mut f = fabric_with(2, params);
        // Before the crash: fine.
        let _ = f
            .send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64))
            .expect_delivered();
        // After: both directions dead.
        let at = SimTime::from_nanos(2_000);
        assert!(!f
            .send(at, KernelId(0), KernelId(1), Blob(64))
            .was_delivered());
        assert!(!f
            .send(at, KernelId(1), KernelId(0), Blob(64))
            .was_delivered());
        assert!(f.is_crashed(KernelId(1), at));
        assert!(!f.is_crashed(KernelId(0), at));
        assert_eq!(f.fault_counters().crash_drops, 2);
    }

    #[test]
    fn cached_min_hop_equals_brute_force_on_asymmetric_interconnect() {
        // Three kernels spread unevenly over two sockets: 0 and 2 share a
        // socket (short hop), 4 sits across the interconnect (long hop) —
        // the hop matrix is non-uniform, so the cached minimum must be the
        // true minimum over all ordered pairs, not just any entry.
        let machine = Machine::new(Topology::new(2, 4), HwParams::default());
        let locs = vec![CoreId(0), CoreId(2), CoreId(4)];
        let f = Fabric::new(&machine, locs.clone(), MsgParams::default());
        let mut brute = SimTime::MAX;
        let mut distinct = std::collections::BTreeSet::new();
        for &a in &locs {
            for &b in &locs {
                if a != b {
                    let h = machine.interconnect().core_to_core(a, b);
                    brute = brute.min(h);
                    distinct.insert(h.as_nanos());
                }
            }
        }
        assert!(distinct.len() > 1, "interconnect should be asymmetric");
        assert_eq!(f.min_hop_latency(), brute);
    }

    #[test]
    fn lookahead_lower_bounds_every_delivery() {
        let mut f = fabric(4);
        let la = f.lookahead();
        assert!(la > SimTime::ZERO);
        // Hammer one channel so the FIFO floor engages, plus a cross pair.
        for i in 0..20u64 {
            let now = SimTime::from_nanos(i * 130);
            let d = f
                .send(now, KernelId(0), KernelId(1), Blob(64 + i as usize))
                .expect_delivered();
            assert!(d.deliver_at >= now + la, "delivery beat the lookahead");
            let d2 = f
                .send(now, KernelId(2), KernelId(3), Blob(64))
                .expect_delivered();
            assert!(d2.deliver_at >= now + la);
        }
    }

    #[test]
    fn single_kernel_fabric_has_zero_min_hop() {
        let machine = Machine::new(Topology::new(1, 2), HwParams::default());
        let f = Fabric::new(&machine, vec![CoreId(0)], MsgParams::default());
        assert_eq!(f.min_hop_latency(), SimTime::ZERO);
    }

    #[test]
    fn absorb_shard_reassembles_counters_and_channels() {
        let mut whole = fabric(4);
        let _ = whole.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let _ = whole.send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(256));

        let base = fabric(4);
        let mut shard_a = base.clone();
        let mut shard_b = base.clone();
        let _ = shard_a.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let _ = shard_b.send(SimTime::ZERO, KernelId(2), KernelId(3), Blob(256));
        let mut merged = base;
        merged.absorb_shard(shard_a);
        merged.absorb_shard(shard_b);

        assert_eq!(merged.total_sends(), whole.total_sends());
        assert_eq!(
            merged.latency_histogram().summary(),
            whole.latency_histogram().summary()
        );
        assert_eq!(merged.channel_stats(), whole.channel_stats());
    }

    #[test]
    #[should_panic(expected = "recorded by two partitions")]
    fn absorb_shard_rejects_overlapping_channels() {
        let base = fabric(2);
        let mut a = base.clone();
        let mut b = base.clone();
        let _ = a.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let _ = b.send(SimTime::ZERO, KernelId(0), KernelId(1), Blob(64));
        let mut merged = base;
        merged.absorb_shard(a);
        merged.absorb_shard(b);
    }

    #[test]
    fn injection_is_deterministic_across_fabrics() {
        let params = MsgParams {
            faults: FaultPlan::uniform_drop(99, 0.3),
            ..MsgParams::default()
        };
        let run = || {
            let mut f = fabric_with(2, params.clone());
            (0..200u64)
                .map(|i| {
                    f.send(
                        SimTime::from_nanos(i * 911),
                        KernelId(0),
                        KernelId(1),
                        Blob(64),
                    )
                    .was_delivered()
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|&d| d) && a.iter().any(|&d| !d));
    }
}
