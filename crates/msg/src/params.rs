//! Message-layer cost constants.

use crate::fault::FaultPlan;

/// Calibrated costs of the shared-memory message layer.
///
/// Defaults target the microsecond-scale kernel-to-kernel messaging the
/// Popcorn papers report for small control messages on one machine: a
/// same-socket 64-byte message lands in roughly 2–3 µs end to end
/// (send software path + ring write + IPI notification + receive path).
#[derive(Debug, Clone, PartialEq)]
pub struct MsgParams {
    /// Send-side software path: marshalling, ring slot claim.
    pub send_sw_ns: u64,
    /// Receive-side software path: demux, handler dispatch.
    pub recv_sw_ns: u64,
    /// Ring write throughput, in nanoseconds per 64-byte cache line.
    pub per_line_ns: u64,
    /// Whether delivery is notified by IPI (true, the default) or by the
    /// receiver polling (adds `poll_interval_ns/2` expected delay instead of
    /// the IPI cost). The paper's layer is interrupt-driven.
    pub ipi_notify: bool,
    /// Mean polling interval when `ipi_notify` is false.
    pub poll_interval_ns: u64,
    /// Deterministic fault-injection script. The default
    /// ([`FaultPlan::none()`]) injects nothing and keeps the send path
    /// byte-identical to a fabric without fault support.
    pub faults: FaultPlan,
}

impl Default for MsgParams {
    fn default() -> Self {
        MsgParams {
            send_sw_ns: 550,
            recv_sw_ns: 650,
            per_line_ns: 18,
            ipi_notify: true,
            poll_interval_ns: 4_000,
            faults: FaultPlan::none(),
        }
    }
}

impl MsgParams {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.ipi_notify && self.poll_interval_ns == 0 {
            return Err("polling mode requires a non-zero poll interval".into());
        }
        self.faults.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(MsgParams::default().validate(), Ok(()));
    }

    #[test]
    fn polling_without_interval_rejected() {
        let p = MsgParams {
            ipi_notify: false,
            poll_interval_ns: 0,
            ..MsgParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn invalid_fault_plan_rejected() {
        let p = MsgParams {
            faults: FaultPlan::uniform_drop(0, 2.0),
            ..MsgParams::default()
        };
        assert!(p.validate().is_err());
    }
}
