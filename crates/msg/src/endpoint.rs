//! Reliable delivery and RPC bookkeeping as a reusable substrate.
//!
//! Every OS model that talks across kernels needs the same three pieces of
//! plumbing on top of the raw [`Fabric`]:
//!
//! 1. turning a [`SendOutcome`] into scheduled receive events;
//! 2. (under fault injection) sequence numbers, duplicate suppression and
//!    retransmission with exponential backoff;
//! 3. request/response correlation with optional deadlines.
//!
//! Historically the Popcorn core and the multikernel baseline each owned a
//! private copy of this plumbing. This module hosts the shared
//! implementation:
//!
//! - [`ReliableFabric`] wraps a [`Fabric`] and owns the sequence-number /
//!   retransmit state. Its [`ReliableFabric::send`] returns a [`SendPlan`]
//!   describing what the *caller* must schedule — the crate stays free of
//!   any event-type dependency, so models with different event alphabets
//!   can all use it.
//! - [`Endpoint`] wraps an [`RpcTable`] and counts registrations and
//!   completions, so per-protocol observability comes for free.
//! - [`RetxPolicy`] owns the backoff arithmetic.
//!
//! The reliability state is allocated only when the fabric's fault plan is
//! active *and* the model asked for reliable delivery; zero-fault runs
//! carry no state and take the plain send path, which keeps their results
//! byte-identical to a model using the fabric directly.

use std::collections::BTreeMap;

use popcorn_sim::SimTime;

use crate::fabric::{Delivery, Fabric, KernelId, SendOutcome, Wire};
use crate::rpc::{RpcId, RpcTable};

/// A payload type that can carry a sequence-number envelope.
///
/// The reliability layer wraps every payload in a sequence envelope (one
/// variant of the model's message enum) so the receive side can suppress
/// injected duplicates. The envelope must account for its own wire
/// overhead in the payload's [`Wire`] impl.
pub trait SeqEnvelope: Wire + Sized {
    /// Wraps `inner` in a sequence envelope carrying `seq`.
    fn wrap_seq(seq: u64, inner: Self) -> Self;

    /// Unwraps a sequence envelope; `Err` returns a non-envelope payload
    /// unchanged.
    fn unwrap_seq(self) -> Result<(u64, Self), Self>;
}

/// Retransmission policy: exponential backoff from `base_ns`, clamped at
/// `cap_ns`, giving up after `max_attempts` total transmissions.
#[derive(Debug, Clone, Copy)]
pub struct RetxPolicy {
    /// Backoff before the first retransmission, in ns.
    pub base_ns: u64,
    /// Backoff ceiling, in ns.
    pub cap_ns: u64,
    /// Total transmissions (first try included) before giving up.
    pub max_attempts: u32,
}

impl RetxPolicy {
    /// Validates the policy's bounds: a zero base backoff, an inverted
    /// `base_ns > cap_ns` range, or zero `max_attempts` would all make the
    /// retransmit loop silently misbehave (hot-spin, non-monotone backoff,
    /// or a "reliable" layer that never transmits at all).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_ns == 0 {
            return Err("retx base_ns must be positive".into());
        }
        if self.base_ns > self.cap_ns {
            return Err(format!(
                "retx base_ns ({}) exceeds cap_ns ({})",
                self.base_ns, self.cap_ns
            ));
        }
        if self.max_attempts == 0 {
            return Err("retx max_attempts must be at least 1".into());
        }
        Ok(())
    }

    /// Backoff before retransmit number `attempt` (1-based: the delay
    /// scheduled after the `attempt`-th failed transmission).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1);
        // `<<` drops overflowing bits silently (and panics past 63 in
        // debug), so saturate once the doubling leaves the u64 range.
        if exp >= self.base_ns.leading_zeros() {
            return self.cap_ns;
        }
        (self.base_ns << exp).min(self.cap_ns)
    }
}

/// A lost message parked in the retransmit buffer.
#[derive(Debug)]
struct Stashed<P> {
    from: KernelId,
    to: KernelId,
    /// Transmissions attempted so far (all lost).
    attempts: u32,
    payload: P,
}

/// Sequence-number and retransmit state, allocated only under active fault
/// injection (see module docs). All maps are ordered: nothing iterates
/// them today, but a `HashMap` here would be a latent nondeterminism
/// hazard for any future code that does.
#[derive(Debug)]
struct SeqState<P> {
    /// Next sequence number per directed channel `(sender, receiver)`.
    next_seq: BTreeMap<(u16, u16), u64>,
    /// Highest sequence seen per directed channel `(receiver, sender)`.
    /// Channels are FIFO and retransmissions take *fresh* sequence numbers
    /// (the receiver never saw the lost original), so arrivals are
    /// strictly monotone in `seq` and anything at or below the high-water
    /// mark is an injected duplicate.
    last_seen: BTreeMap<(u16, u16), u64>,
    /// Lost messages awaiting their retransmit timer, by token.
    retx: BTreeMap<u64, Stashed<P>>,
    next_token: u64,
}

impl<P> Default for SeqState<P> {
    fn default() -> Self {
        SeqState {
            next_seq: BTreeMap::new(),
            last_seen: BTreeMap::new(),
            retx: BTreeMap::new(),
            next_token: 0,
        }
    }
}

impl<P> SeqState<P> {
    fn alloc_seq(&mut self, from: KernelId, to: KernelId) -> u64 {
        let c = self.next_seq.entry((from.0, to.0)).or_insert(0);
        *c += 1;
        *c
    }

    fn stash(&mut self, s: Stashed<P>) -> u64 {
        self.next_token += 1;
        self.retx.insert(self.next_token, s);
        self.next_token
    }
}

/// What the caller must do after a send — the endpoint's side of the
/// bargain that keeps this crate independent of any event type. The OS
/// model maps each variant onto its own scheduler/event machinery.
#[derive(Debug)]
#[must_use = "a send plan describes events the caller must schedule"]
pub enum SendPlan<P> {
    /// The fabric delivered: schedule a receive at `delivery.deliver_at`
    /// (and, if the fault injector produced one, a duplicate at
    /// `duplicate_at`).
    Deliver {
        /// The delivery to schedule.
        delivery: Delivery<P>,
        /// Injected-duplicate delivery time, if any.
        duplicate_at: Option<SimTime>,
    },
    /// The message was lost and the reliability layer is off: raw loss,
    /// nothing to schedule.
    LostRaw,
    /// The transmission was lost; the payload is parked in the retransmit
    /// buffer under `token`. Schedule a retransmit timer at `fire_at` and
    /// call [`ReliableFabric::retransmit`] when it fires.
    Backoff {
        /// Retransmit-buffer token to pass back to `retransmit`.
        token: u64,
        /// When the retransmit timer must fire.
        fire_at: SimTime,
        /// The backoff delay itself (for accounting).
        backoff: SimTime,
    },
    /// Every transmission attempt was lost; the sender must unwind
    /// whatever local state expected the send to succeed.
    Abandoned {
        /// The sending kernel.
        from: KernelId,
        /// The unreachable destination.
        to: KernelId,
        /// The undeliverable payload, back in the sender's hands.
        payload: P,
    },
}

/// A [`Fabric`] with reliable delivery layered on top (see module docs).
#[derive(Debug)]
pub struct ReliableFabric<P: SeqEnvelope> {
    fabric: Fabric,
    policy: RetxPolicy,
    /// `None` on the plain path (no faults or reliability disabled).
    seq: Option<SeqState<P>>,
}

impl<P: SeqEnvelope> ReliableFabric<P> {
    /// Wraps `fabric`. Reliability state is allocated only when the
    /// fabric's fault plan is active and `reliable` is set.
    pub fn new(fabric: Fabric, policy: RetxPolicy, reliable: bool) -> Self {
        let seq = (fabric.faults_active() && reliable).then(SeqState::default);
        ReliableFabric {
            fabric,
            policy,
            seq,
        }
    }

    /// The wrapped fabric (read access for reports).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable access to the wrapped fabric, for sends that must bypass
    /// sequencing (channel acks) and for fault bookkeeping.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// Unwraps the fabric, discarding reliability state. Only meaningful
    /// when the reliability layer is inactive (partitioned runs gate out
    /// fault plans, so sequencing state is never allocated there).
    pub fn into_fabric(self) -> Fabric {
        debug_assert!(self.seq.is_none(), "dropping live retransmission state");
        self.fabric
    }

    /// True when the reliability layer is active.
    pub fn is_reliable(&self) -> bool {
        self.seq.is_some()
    }

    /// The retransmission policy.
    pub fn policy(&self) -> RetxPolicy {
        self.policy
    }

    /// Sends `payload`, sequenced when the reliability layer is active.
    pub fn send(&mut self, now: SimTime, from: KernelId, to: KernelId, payload: P) -> SendPlan<P> {
        if self.seq.is_none() {
            return match self.fabric.send(now, from, to, payload) {
                SendOutcome::Delivered {
                    delivery,
                    duplicate_at,
                } => SendPlan::Deliver {
                    delivery,
                    duplicate_at,
                },
                SendOutcome::Dropped { .. } => SendPlan::LostRaw,
            };
        }
        self.transmit(now, from, to, payload, 1)
    }

    /// Retransmits the stashed message under `token`; `None` if the token
    /// is unknown (the stash was already drained). The retransmission
    /// takes a *fresh* sequence number — see [`SeqState::last_seen`].
    pub fn retransmit(&mut self, now: SimTime, token: u64) -> Option<SendPlan<P>> {
        let s = self.seq.as_mut()?.retx.remove(&token)?;
        Some(self.transmit(now, s.from, s.to, s.payload, s.attempts + 1))
    }

    /// One sequenced transmission; `attempt` is its 1-based ordinal.
    fn transmit(
        &mut self,
        now: SimTime,
        from: KernelId,
        to: KernelId,
        payload: P,
        attempt: u32,
    ) -> SendPlan<P> {
        let seq = self
            .seq
            .as_mut()
            .expect("sequenced transmit without reliability state")
            .alloc_seq(from, to);
        let wrapped = P::wrap_seq(seq, payload);
        match self.fabric.send(now, from, to, wrapped) {
            SendOutcome::Delivered {
                delivery,
                duplicate_at,
            } => SendPlan::Deliver {
                delivery,
                duplicate_at,
            },
            SendOutcome::Dropped { payload, .. } => {
                let Ok((_, inner)) = payload.unwrap_seq() else {
                    unreachable!("the fabric returns the payload it was given");
                };
                if attempt >= self.policy.max_attempts {
                    return SendPlan::Abandoned {
                        from,
                        to,
                        payload: inner,
                    };
                }
                let backoff = SimTime::from_nanos(self.policy.backoff_ns(attempt));
                let token = self.seq.as_mut().expect("present above").stash(Stashed {
                    from,
                    to,
                    attempts: attempt,
                    payload: inner,
                });
                SendPlan::Backoff {
                    token,
                    fire_at: now + backoff,
                    backoff,
                }
            }
        }
    }

    /// Drains every stashed retransmission on the directed channel
    /// `from → to`, returning the payloads in stash order (monotone tokens,
    /// so oldest first). Pending retransmit timers for the drained tokens
    /// become no-ops ([`ReliableFabric::retransmit`] returns `None`).
    ///
    /// A crash-recovery layer calls this when `to` is declared dead: the
    /// messages would never be acknowledged, and the sender must unwind the
    /// state that expected them to arrive (exactly as for
    /// [`SendPlan::Abandoned`]).
    pub fn abandon_to(&mut self, from: KernelId, to: KernelId) -> Vec<P> {
        let Some(state) = self.seq.as_mut() else {
            return Vec::new();
        };
        let tokens: Vec<u64> = state
            .retx
            .iter()
            .filter(|(_, s)| s.from == from && s.to == to)
            .map(|(&t, _)| t)
            .collect();
        tokens
            .into_iter()
            .map(|t| state.retx.remove(&t).expect("token listed above").payload)
            .collect()
    }

    /// Receive-side duplicate suppression: records `seq` as seen on the
    /// directed channel `sender → receiver` and returns true when it is
    /// fresh (deliver + ack) or false for an injected duplicate (drop).
    pub fn accept_seq(&mut self, receiver: KernelId, sender: KernelId, seq: u64) -> bool {
        let Some(state) = self.seq.as_mut() else {
            debug_assert!(false, "sequenced message without reliability state");
            return false;
        };
        let last = state.last_seen.entry((receiver.0, sender.0)).or_insert(0);
        if seq <= *last {
            return false;
        }
        *last = seq;
        true
    }
}

/// An [`RpcTable`] with issue/completion accounting: the request/response
/// half of the shared endpoint substrate.
#[derive(Debug, Clone)]
pub struct Endpoint<C> {
    rpcs: RpcTable<C>,
    issued: u64,
    completed: u64,
}

impl<C> Default for Endpoint<C> {
    fn default() -> Self {
        Endpoint::new()
    }
}

impl<C> Endpoint<C> {
    /// Creates an empty endpoint.
    pub fn new() -> Self {
        Endpoint {
            rpcs: RpcTable::new(),
            issued: 0,
            completed: 0,
        }
    }

    /// Allocates a fresh id and parks `continuation` under it.
    pub fn register(&mut self, continuation: C) -> RpcId {
        self.issued += 1;
        self.rpcs.register(continuation)
    }

    /// Like [`Endpoint::register`], but records a response deadline (see
    /// [`RpcTable::register_with_deadline`]).
    pub fn register_with_deadline(&mut self, continuation: C, deadline: SimTime) -> RpcId {
        self.issued += 1;
        self.rpcs.register_with_deadline(continuation, deadline)
    }

    /// Completes a request (idempotent; see [`RpcTable::complete`]).
    pub fn complete(&mut self, id: RpcId) -> Option<C> {
        let c = self.rpcs.complete(id);
        if c.is_some() {
            self.completed += 1;
        }
        c
    }

    /// Peeks at a pending continuation without completing it.
    pub fn get(&self, id: RpcId) -> Option<&C> {
        self.rpcs.get(id)
    }

    /// Mutable peek (for multi-response protocols).
    pub fn get_mut(&mut self, id: RpcId) -> Option<&mut C> {
        self.rpcs.get_mut(id)
    }

    /// Number of in-flight requests.
    pub fn outstanding(&self) -> usize {
        self.rpcs.outstanding()
    }

    /// Requests registered over the endpoint's lifetime.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Requests completed (first completion only).
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::params::MsgParams;
    use popcorn_hw::{CoreId, HwParams, Machine, Topology};

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping,
        Seq { seq: u64, inner: Box<Msg> },
    }

    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            match self {
                Msg::Ping => 64,
                Msg::Seq { inner, .. } => 8 + inner.wire_size(),
            }
        }
    }

    impl SeqEnvelope for Msg {
        fn wrap_seq(seq: u64, inner: Self) -> Self {
            Msg::Seq {
                seq,
                inner: Box::new(inner),
            }
        }

        fn unwrap_seq(self) -> Result<(u64, Self), Self> {
            match self {
                Msg::Seq { seq, inner } => Ok((seq, *inner)),
                other => Err(other),
            }
        }
    }

    fn fabric(plan: Option<FaultPlan>) -> Fabric {
        let machine = Machine::new(Topology::new(2, 4), HwParams::default());
        let params = MsgParams {
            faults: plan.unwrap_or_else(FaultPlan::none),
            ..MsgParams::default()
        };
        Fabric::new(&machine, vec![CoreId(0), CoreId(4)], params)
    }

    fn policy() -> RetxPolicy {
        RetxPolicy {
            base_ns: 50_000,
            cap_ns: 2_000_000,
            max_attempts: 10,
        }
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let p = policy();
        assert_eq!(p.backoff_ns(1), 50_000);
        assert_eq!(p.backoff_ns(2), 100_000);
        assert_eq!(p.backoff_ns(5), 800_000);
        assert_eq!(p.backoff_ns(7), 2_000_000); // clamped
        assert_eq!(p.backoff_ns(63), 2_000_000); // shift would overflow
    }

    #[test]
    fn plain_path_without_faults() {
        let mut net: ReliableFabric<Msg> = ReliableFabric::new(fabric(None), policy(), true);
        assert!(!net.is_reliable());
        match net.send(SimTime::ZERO, KernelId(0), KernelId(1), Msg::Ping) {
            SendPlan::Deliver { delivery, .. } => {
                assert_eq!(delivery.payload, Msg::Ping); // no envelope
                assert!(delivery.deliver_at > SimTime::ZERO);
            }
            other => panic!("expected Deliver, got {other:?}"),
        }
    }

    #[test]
    fn sequenced_sends_wrap_with_monotone_seq() {
        let plan = FaultPlan::uniform_drop(1, 0.0); // active but lossless
        let mut net: ReliableFabric<Msg> = ReliableFabric::new(fabric(Some(plan)), policy(), true);
        assert!(net.is_reliable());
        for expect in 1..=3u64 {
            match net.send(SimTime::ZERO, KernelId(0), KernelId(1), Msg::Ping) {
                SendPlan::Deliver { delivery, .. } => match delivery.payload {
                    Msg::Seq { seq, inner } => {
                        assert_eq!(seq, expect);
                        assert_eq!(*inner, Msg::Ping);
                    }
                    other => panic!("expected Seq envelope, got {other:?}"),
                },
                other => panic!("expected Deliver, got {other:?}"),
            }
        }
    }

    #[test]
    fn lost_send_backs_off_then_retransmits_with_fresh_seq() {
        let plan = FaultPlan::uniform_drop(7, 1.0); // lose everything
        let mut net: ReliableFabric<Msg> = ReliableFabric::new(fabric(Some(plan)), policy(), true);
        let now = SimTime::from_nanos(1_000);
        let SendPlan::Backoff {
            token,
            fire_at,
            backoff,
        } = net.send(now, KernelId(0), KernelId(1), Msg::Ping)
        else {
            panic!("expected Backoff");
        };
        assert_eq!(backoff, SimTime::from_nanos(50_000));
        assert_eq!(fire_at, now + backoff);
        // Second transmission (also lost) doubles the backoff and consumed
        // sequence number 2.
        let SendPlan::Backoff {
            token: token2,
            backoff: backoff2,
            ..
        } = net.retransmit(fire_at, token).expect("token is stashed")
        else {
            panic!("expected Backoff on retransmit");
        };
        assert_eq!(backoff2, SimTime::from_nanos(100_000));
        assert_ne!(token, token2);
        // The token was consumed: replaying it is a no-op.
        assert!(net.retransmit(fire_at, token).is_none());
    }

    #[test]
    fn abandoned_after_max_attempts() {
        let plan = FaultPlan::uniform_drop(7, 1.0);
        let mut net: ReliableFabric<Msg> = ReliableFabric::new(
            fabric(Some(plan)),
            RetxPolicy {
                max_attempts: 2,
                ..policy()
            },
            true,
        );
        let SendPlan::Backoff { token, fire_at, .. } =
            net.send(SimTime::ZERO, KernelId(0), KernelId(1), Msg::Ping)
        else {
            panic!("expected Backoff");
        };
        match net.retransmit(fire_at, token).expect("stashed") {
            SendPlan::Abandoned { from, to, payload } => {
                assert_eq!(from, KernelId(0));
                assert_eq!(to, KernelId(1));
                assert_eq!(payload, Msg::Ping); // unwrapped, back in hand
            }
            other => panic!("expected Abandoned, got {other:?}"),
        }
    }

    #[test]
    fn retx_policy_validation_rejects_degenerate_bounds() {
        assert_eq!(policy().validate(), Ok(()));
        let zero_base = RetxPolicy {
            base_ns: 0,
            ..policy()
        };
        assert!(zero_base.validate().is_err());
        let inverted = RetxPolicy {
            base_ns: 3_000_000,
            cap_ns: 2_000_000,
            max_attempts: 10,
        };
        assert!(inverted.validate().unwrap_err().contains("exceeds cap_ns"));
        let no_attempts = RetxPolicy {
            max_attempts: 0,
            ..policy()
        };
        assert!(no_attempts.validate().is_err());
        // Degenerate-but-legal: base == cap is a constant backoff.
        let flat = RetxPolicy {
            base_ns: 2_000_000,
            cap_ns: 2_000_000,
            max_attempts: 1,
        };
        assert_eq!(flat.validate(), Ok(()));
    }

    #[test]
    fn abandon_to_drains_only_the_dead_channel() {
        let plan = FaultPlan::uniform_drop(7, 1.0); // lose everything
        let mut net: ReliableFabric<Msg> = ReliableFabric::new(fabric(Some(plan)), policy(), true);
        let (a, b) = (KernelId(0), KernelId(1));
        // Two stashed a→b losses and one b→a loss.
        let SendPlan::Backoff { token, .. } = net.send(SimTime::ZERO, a, b, Msg::Ping) else {
            panic!("expected Backoff");
        };
        assert!(matches!(
            net.send(SimTime::ZERO, a, b, Msg::Ping),
            SendPlan::Backoff { .. }
        ));
        let SendPlan::Backoff { token: rev, .. } = net.send(SimTime::ZERO, b, a, Msg::Ping) else {
            panic!("expected Backoff");
        };
        let drained = net.abandon_to(a, b);
        assert_eq!(drained, vec![Msg::Ping, Msg::Ping]);
        // The drained tokens' timers are now no-ops …
        assert!(net.retransmit(SimTime::from_nanos(1), token).is_none());
        // … while the reverse channel's stash is untouched.
        assert!(net.retransmit(SimTime::from_nanos(1), rev).is_some());
        assert!(net.abandon_to(a, b).is_empty());
    }

    #[test]
    fn accept_seq_suppresses_duplicates_per_channel() {
        let plan = FaultPlan::uniform_drop(1, 0.0);
        let mut net: ReliableFabric<Msg> = ReliableFabric::new(fabric(Some(plan)), policy(), true);
        let (a, b) = (KernelId(0), KernelId(1));
        assert!(net.accept_seq(b, a, 1));
        assert!(!net.accept_seq(b, a, 1)); // duplicate
        assert!(net.accept_seq(b, a, 2));
        assert!(!net.accept_seq(b, a, 1)); // stale duplicate
                                           // Directions are independent channels.
        assert!(net.accept_seq(a, b, 1));
    }

    #[test]
    fn endpoint_counts_issues_and_completions() {
        let mut ep: Endpoint<&'static str> = Endpoint::new();
        let a = ep.register("a");
        let b = ep.register_with_deadline("b", SimTime::from_nanos(10));
        assert_eq!(ep.issued(), 2);
        assert_eq!(ep.outstanding(), 2);
        assert_eq!(ep.complete(a), Some("a"));
        assert_eq!(ep.complete(a), None); // idempotent, not double-counted
        assert_eq!(ep.complete(b), Some("b"));
        assert_eq!(ep.completed(), 2);
    }
}
