#![warn(missing_docs)]
//! Popcorn's inter-kernel message layer, as a simulation model.
//!
//! In Popcorn Linux, kernel instances on one machine communicate through a
//! kernel-level message layer built on shared-memory rings with IPI
//! notification. Every protocol in the paper — thread migration, address
//! space consistency, distributed futexes — rides on it, so its latency and
//! throughput shape every result.
//!
//! This crate models that layer:
//!
//! - [`KernelId`] — a kernel instance identifier;
//! - [`Wire`] — payload size accounting (bytes on the ring);
//! - [`Fabric`] — per-ordered-pair FIFO channels with a
//!   setup + per-byte + notification cost model, transmit serialization
//!   (a channel is busy while a message is being written), and delivery
//!   timestamps the OS model turns into simulation events;
//! - [`RpcTable`] — request/response correlation for the protocol layers;
//! - [`ReliableFabric`] / [`Endpoint`] — the shared reliable-delivery and
//!   RPC-bookkeeping substrate every OS model builds its protocols on;
//! - [`MsgParams`] — the calibrated cost constants;
//! - [`FaultPlan`] — deterministic fault injection (drop / delay /
//!   duplicate / blackout / kernel crash); inactive by default.
//!
//! # Example
//!
//! ```
//! use popcorn_msg::{Fabric, KernelId, MsgParams, Wire};
//! use popcorn_hw::{Machine, Topology, HwParams, CoreId};
//! use popcorn_sim::SimTime;
//!
//! struct Ping;
//! impl Wire for Ping {
//!     fn wire_size(&self) -> usize { 64 }
//! }
//!
//! let machine = Machine::new(Topology::new(2, 4), HwParams::default());
//! // Kernel 0 lives on socket 0 (core 0), kernel 1 on socket 1 (core 4).
//! let mut fabric = Fabric::new(&machine, vec![CoreId(0), CoreId(4)], MsgParams::default());
//! let d = fabric.send(SimTime::ZERO, KernelId(0), KernelId(1), Ping).expect_delivered();
//! assert!(d.deliver_at > SimTime::ZERO);
//! ```

pub mod endpoint;
pub mod fabric;
pub mod fault;
pub mod params;
pub mod rpc;

pub use endpoint::{Endpoint, ReliableFabric, RetxPolicy, SendPlan, SeqEnvelope};
pub use fabric::{Delivery, Fabric, KernelId, SendOutcome, Wire};
pub use fault::{Blackout, ChannelFaults, Crash, FaultCounters, FaultPlan};
pub use params::MsgParams;
pub use rpc::{RpcId, RpcTable};
