#![warn(missing_docs)]
//! Simulated multicore x86 machine for the Popcorn replicated-kernel OS
//! reproduction.
//!
//! The paper's evaluation ran on multi-socket x86 hardware; its results are
//! dominated by a handful of hardware-mediated OS costs: cache-line transfer
//! on contended kernel locks, NUMA-asymmetric memory latency,
//! inter-processor interrupts (IPIs), and TLB shootdowns. This crate models
//! exactly those, in virtual time:
//!
//! - [`Topology`] — sockets × cores, NUMA distance ([`topo`]);
//! - [`HwParams`] — every latency constant, overridable per experiment ([`params`]);
//! - [`Interconnect`] — core↔core and core↔memory latency ([`interconnect`]);
//! - [`LockSite`] / [`RwLockSite`] — queuing models that turn concurrent
//!   acquires of a simulated kernel lock into waiting time and cache-line
//!   ping-pong cost ([`lock`]) — the mechanism behind the SMP baseline's
//!   scalability collapse;
//! - [`ShootdownModel`] — IPI broadcast and TLB-shootdown completion time
//!   ([`coherence`]).
//!
//! # Example
//!
//! ```
//! use popcorn_hw::{Machine, Topology, HwParams, CoreId};
//!
//! let machine = Machine::new(Topology::new(4, 16), HwParams::default());
//! let a = CoreId(0);
//! let b = CoreId(17); // second socket
//! assert!(machine.interconnect().core_to_core(a, b)
//!         > machine.interconnect().core_to_core(a, CoreId(1)));
//! ```

pub mod coherence;
pub mod interconnect;
pub mod lock;
pub mod params;
pub mod topo;

pub use coherence::ShootdownModel;
pub use interconnect::Interconnect;
pub use lock::{LockAcquire, LockSite, RwLockSite};
pub use params::HwParams;
pub use topo::{CoreId, SocketId, Topology};

use popcorn_sim::SimTime;

/// The assembled machine model: topology plus calibrated cost parameters.
///
/// `Machine` is shared read-only by every kernel instance in an OS model;
/// all mutable contention state lives in [`LockSite`]s owned by the kernels
/// themselves.
#[derive(Debug, Clone)]
pub struct Machine {
    topology: Topology,
    params: HwParams,
    interconnect: Interconnect,
    shootdown: ShootdownModel,
}

impl Machine {
    /// Builds a machine from a topology and parameters.
    pub fn new(topology: Topology, params: HwParams) -> Self {
        let interconnect = Interconnect::new(topology, &params);
        let shootdown = ShootdownModel::new(&params);
        Machine {
            topology,
            params,
            interconnect,
            shootdown,
        }
    }

    /// The core/socket layout.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The calibrated cost constants.
    pub fn params(&self) -> &HwParams {
        &self.params
    }

    /// Core↔core and core↔memory latency model.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// IPI / TLB-shootdown cost model.
    pub fn shootdown(&self) -> &ShootdownModel {
        &self.shootdown
    }

    /// Converts CPU cycles to virtual time at this machine's clock.
    pub fn cycles(&self, n: u64) -> SimTime {
        SimTime::from_cycles(n, self.params.clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(Topology::new(2, 4), HwParams::default())
    }

    #[test]
    fn cycles_convert_at_configured_clock() {
        let m = machine();
        // 2400 cycles at 2.4 GHz = 1 µs.
        assert_eq!(m.cycles(2400), SimTime::from_micros(1));
        assert_eq!(m.cycles(0), SimTime::ZERO);
    }

    #[test]
    fn accessors_expose_consistent_views() {
        let m = machine();
        assert_eq!(m.topology().num_cores(), 8);
        assert_eq!(m.interconnect().topology(), m.topology());
        assert_eq!(m.params().ipi_latency(), m.shootdown().ipi_latency());
    }

    #[test]
    fn clone_preserves_the_model() {
        let a = machine();
        let b = a.clone();
        assert_eq!(a.topology(), b.topology());
        assert_eq!(a.params(), b.params());
        assert_eq!(
            a.interconnect().core_to_core(CoreId(0), CoreId(5)),
            b.interconnect().core_to_core(CoreId(0), CoreId(5))
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn interconnect_rejects_foreign_cores() {
        machine().interconnect().core_to_core(CoreId(0), CoreId(99));
    }
}
