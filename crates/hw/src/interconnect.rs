//! Core↔core and core↔memory latency model.
//!
//! Latency between cores is two-tier (same socket / cross socket), which is
//! what the QPI-style interconnects of the paper era look like to software.
//! Memory accesses are charged local or remote DRAM latency by socket.

use popcorn_sim::SimTime;

use crate::params::HwParams;
use crate::topo::{CoreId, SocketId, Topology};

/// Precomputed latency tiers for a given topology and parameter set.
///
/// # Example
///
/// ```
/// use popcorn_hw::{Interconnect, Topology, HwParams, CoreId};
///
/// let ic = Interconnect::new(Topology::new(2, 2), &HwParams::default());
/// assert!(ic.core_to_core(CoreId(0), CoreId(0)).is_zero());
/// assert!(ic.core_to_core(CoreId(0), CoreId(3)) > ic.core_to_core(CoreId(0), CoreId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    topology: Topology,
    same_socket: SimTime,
    cross_socket: SimTime,
    dram_local: SimTime,
    dram_remote: SimTime,
    page_copy_same: SimTime,
    page_copy_cross: SimTime,
    local_replica_walk: SimTime,
    remote_page_walk: SimTime,
    pt_replica_update: SimTime,
}

impl Interconnect {
    /// Builds the latency model.
    pub fn new(topology: Topology, params: &HwParams) -> Self {
        Interconnect {
            topology,
            same_socket: SimTime::from_nanos(params.line_transfer_same_socket_ns),
            cross_socket: SimTime::from_nanos(params.line_transfer_cross_socket_ns),
            dram_local: SimTime::from_nanos(params.dram_local_ns),
            dram_remote: SimTime::from_nanos(params.dram_remote_ns),
            page_copy_same: SimTime::from_nanos(params.page_copy_same_socket_ns),
            page_copy_cross: SimTime::from_nanos(params.page_copy_cross_socket_ns),
            local_replica_walk: SimTime::from_nanos(params.local_replica_walk_ns),
            remote_page_walk: SimTime::from_nanos(params.remote_page_walk_ns),
            pt_replica_update: SimTime::from_nanos(params.pt_replica_update_ns),
        }
    }

    /// One cache-line transfer between two cores (zero if they are the same
    /// core — the line is already local).
    pub fn core_to_core(&self, from: CoreId, to: CoreId) -> SimTime {
        if from == to {
            SimTime::ZERO
        } else if self.topology.same_socket(from, to) {
            self.same_socket
        } else {
            self.cross_socket
        }
    }

    /// DRAM access from `core` to memory homed on `home` socket.
    pub fn dram_access(&self, core: CoreId, home: SocketId) -> SimTime {
        if self.topology.socket_of(core) == home {
            self.dram_local
        } else {
            self.dram_remote
        }
    }

    /// Copying one 4 KiB page from memory homed on `from` to memory homed on
    /// `to` (same-socket copies are cheaper).
    pub fn page_copy(&self, from: SocketId, to: SocketId) -> SimTime {
        if from == to {
            self.page_copy_same
        } else {
            self.page_copy_cross
        }
    }

    /// A page-table walk, charged by replica locality: against a local
    /// replica of the tables, or against tables living on another kernel's
    /// memory (every level a remote access).
    pub fn page_walk(&self, local_replica: bool) -> SimTime {
        if local_replica {
            self.local_replica_walk
        } else {
            self.remote_page_walk
        }
    }

    /// Applying one pushed page-table-entry update at a replica holder.
    pub fn pt_replica_update(&self) -> SimTime {
        self.pt_replica_update
    }

    /// The topology this model was built for.
    pub fn topology(&self) -> Topology {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ic() -> Interconnect {
        Interconnect::new(Topology::new(2, 4), &HwParams::default())
    }

    #[test]
    fn self_transfer_is_free() {
        assert_eq!(ic().core_to_core(CoreId(2), CoreId(2)), SimTime::ZERO);
    }

    #[test]
    fn cross_socket_costs_more() {
        let ic = ic();
        let near = ic.core_to_core(CoreId(0), CoreId(3));
        let far = ic.core_to_core(CoreId(0), CoreId(4));
        assert!(far > near);
        assert!(near > SimTime::ZERO);
    }

    #[test]
    fn transfer_is_symmetric() {
        let ic = ic();
        for a in 0..8u16 {
            for b in 0..8u16 {
                assert_eq!(
                    ic.core_to_core(CoreId(a), CoreId(b)),
                    ic.core_to_core(CoreId(b), CoreId(a))
                );
            }
        }
    }

    #[test]
    fn dram_numa_penalty() {
        let ic = ic();
        let local = ic.dram_access(CoreId(0), SocketId(0));
        let remote = ic.dram_access(CoreId(0), SocketId(1));
        assert!(remote > local);
    }

    #[test]
    fn page_copy_tiers() {
        let ic = ic();
        assert!(ic.page_copy(SocketId(0), SocketId(1)) > ic.page_copy(SocketId(0), SocketId(0)));
    }

    #[test]
    fn page_walk_tiers_match_params() {
        let p = HwParams::default();
        let ic = Interconnect::new(Topology::new(2, 4), &p);
        assert_eq!(ic.page_walk(true).as_nanos(), p.local_replica_walk_ns);
        assert_eq!(ic.page_walk(false).as_nanos(), p.remote_page_walk_ns);
        assert!(ic.page_walk(false) > ic.page_walk(true));
        assert_eq!(ic.pt_replica_update().as_nanos(), p.pt_replica_update_ns);
    }
}
