//! Inter-processor interrupts and TLB shootdowns.
//!
//! In the SMP baseline every `munmap`/protection change pays a TLB shootdown
//! across all cores the address space runs on; in the replicated-kernel
//! design shootdowns stay within one kernel's (smaller) core set, with
//! cross-kernel invalidation carried by messages instead. This module prices
//! both the IPI primitive and the full shootdown round.

use popcorn_sim::SimTime;

use crate::params::HwParams;
use crate::topo::CoreId;

/// Cost breakdown of one TLB shootdown round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShootdownCost {
    /// Time the initiating core is busy (setup, sending, waiting for acks).
    pub initiator_busy: SimTime,
    /// Time each target core spends in the flush IPI handler.
    pub target_busy: SimTime,
}

/// IPI and TLB shootdown cost model.
///
/// # Example
///
/// ```
/// use popcorn_hw::{ShootdownModel, HwParams, CoreId};
///
/// let m = ShootdownModel::new(&HwParams::default());
/// let few = m.tlb_shootdown(&[CoreId(1)]);
/// let many = m.tlb_shootdown(&[CoreId(1), CoreId(2), CoreId(3)]);
/// assert!(many.initiator_busy > few.initiator_busy);
/// ```
#[derive(Debug, Clone)]
pub struct ShootdownModel {
    ipi_latency: SimTime,
    ipi_handler: SimTime,
    base: SimTime,
    per_target_send: SimTime,
    local_invalidate: SimTime,
}

impl ShootdownModel {
    /// Builds the model from hardware parameters.
    pub fn new(params: &HwParams) -> Self {
        ShootdownModel {
            ipi_latency: params.ipi_latency(),
            ipi_handler: params.ipi_handler(),
            base: SimTime::from_nanos(params.tlb_shootdown_base_ns),
            // Writing the ICR register per destination, roughly one atomic.
            per_target_send: params.atomic_op(),
            local_invalidate: SimTime::from_nanos(params.tlb_invalidate_local_ns),
        }
    }

    /// One-way IPI delivery latency (send to handler entry).
    pub fn ipi_latency(&self) -> SimTime {
        self.ipi_latency
    }

    /// Cost of running an IPI handler on the target core.
    pub fn ipi_handler_cost(&self) -> SimTime {
        self.ipi_handler
    }

    /// Local-only TLB invalidation (no remote cores map the page).
    pub fn local_invalidate(&self) -> SimTime {
        self.base + self.local_invalidate
    }

    /// A full shootdown: invalidate locally, IPI every target, wait for all
    /// acks. Targets run their handlers in parallel, so initiator wall time
    /// grows with target *count* only through send overhead, plus one
    /// round-trip.
    pub fn tlb_shootdown(&self, targets: &[CoreId]) -> ShootdownCost {
        if targets.is_empty() {
            return ShootdownCost {
                initiator_busy: self.local_invalidate(),
                target_busy: SimTime::ZERO,
            };
        }
        let sends = self.per_target_send * targets.len() as u64;
        let target_busy = self.ipi_handler + self.local_invalidate;
        // Round trip: deliver, flush, ack flight back.
        let round_trip = self.ipi_latency + target_busy + self.ipi_latency;
        ShootdownCost {
            initiator_busy: self.base + self.local_invalidate + sends + round_trip,
            target_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ShootdownModel {
        ShootdownModel::new(&HwParams::default())
    }

    #[test]
    fn empty_target_set_is_local_only() {
        let m = model();
        let c = m.tlb_shootdown(&[]);
        assert_eq!(c.initiator_busy, m.local_invalidate());
        assert_eq!(c.target_busy, SimTime::ZERO);
    }

    #[test]
    fn cost_grows_with_target_count() {
        let m = model();
        let one = m.tlb_shootdown(&[CoreId(1)]).initiator_busy;
        let four = m
            .tlb_shootdown(&[CoreId(1), CoreId(2), CoreId(3), CoreId(4)])
            .initiator_busy;
        assert!(four > one);
        // But sub-linearly: handlers run in parallel, so 4 targets cost far
        // less than 4× one target.
        assert!(four.as_nanos() < 2 * one.as_nanos());
    }

    #[test]
    fn remote_shootdown_dwarfs_local() {
        let m = model();
        let remote = m.tlb_shootdown(&[CoreId(1)]).initiator_busy;
        assert!(remote.as_nanos() > 3 * m.local_invalidate().as_nanos());
    }

    #[test]
    fn target_busy_is_handler_plus_flush() {
        let m = model();
        let p = HwParams::default();
        let c = m.tlb_shootdown(&[CoreId(1)]);
        assert_eq!(
            c.target_busy.as_nanos(),
            p.ipi_handler_ns + p.tlb_invalidate_local_ns
        );
    }
}
