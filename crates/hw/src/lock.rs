//! Queuing models for simulated kernel locks.
//!
//! This is the mechanism that makes the SMP baseline's shared data
//! structures collapse under load, which is the phenomenon the paper's
//! replicated-kernel design removes. A [`LockSite`] is *not* a lock the
//! simulator takes — the simulation is single-threaded — it is an analytic
//! model: each `acquire` call at virtual time `t` computes how long the
//! caller would have waited given every earlier acquire, charges a
//! cache-line transfer when ownership moves between cores, and returns the
//! times at which the lock was obtained and released.
//!
//! [`RwLockSite`] models a reader/writer semaphore in the style of Linux's
//! `mmap_sem`: readers proceed in parallel *except* for a serialized atomic
//! update of the reader count cache line — which is exactly the reader-side
//! scalability bottleneck the Popcorn paper sidesteps by replicating address
//! spaces per kernel.

use popcorn_sim::{Counter, Histogram, SimTime};

use crate::interconnect::Interconnect;
use crate::topo::CoreId;

/// The outcome of one simulated lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockAcquire {
    /// When the caller obtained the lock (≥ request time).
    pub acquired_at: SimTime,
    /// When the caller released the lock (`acquired_at + hold`).
    pub released_at: SimTime,
    /// Time spent waiting behind earlier holders.
    pub wait: SimTime,
}

impl LockAcquire {
    /// Total time the calling core was occupied by this lock operation,
    /// from request to release.
    pub fn busy(&self, requested_at: SimTime) -> SimTime {
        self.released_at.saturating_sub(requested_at)
    }
}

/// An exclusive spinlock's contention model (e.g. a runqueue lock, the task
/// list lock, a futex hash bucket lock).
///
/// # Example
///
/// ```
/// use popcorn_hw::{LockSite, Interconnect, Topology, HwParams, CoreId};
/// use popcorn_sim::SimTime;
///
/// let params = HwParams::default();
/// let ic = Interconnect::new(Topology::new(1, 4), &params);
/// let mut lock = LockSite::new("runqueue", &params);
///
/// // Two cores hit the lock at the same instant: the second waits.
/// let t = SimTime::from_micros(1);
/// let hold = SimTime::from_nanos(200);
/// let first = lock.acquire(t, CoreId(0), hold, &ic);
/// let second = lock.acquire(t, CoreId(1), hold, &ic);
/// assert_eq!(first.wait, SimTime::ZERO);
/// assert!(second.wait > SimTime::ZERO);
/// assert!(second.acquired_at >= first.released_at);
/// ```
#[derive(Debug, Clone)]
pub struct LockSite {
    name: &'static str,
    base: SimTime,
    free_at: SimTime,
    last_owner: Option<CoreId>,
    acquires: Counter,
    contended: Counter,
    wait_hist: Histogram,
    total_hold: SimTime,
}

impl LockSite {
    /// Creates a lock site; `name` labels it in statistics output.
    pub fn new(name: &'static str, params: &crate::HwParams) -> Self {
        LockSite {
            name,
            base: params.spinlock_uncontended(),
            free_at: SimTime::ZERO,
            last_owner: None,
            acquires: Counter::new(),
            contended: Counter::new(),
            wait_hist: Histogram::new(),
            total_hold: SimTime::ZERO,
        }
    }

    /// Simulates acquiring the lock at `now` from `core`, holding it for
    /// `hold`. Returns when it was acquired and released.
    pub fn acquire(
        &mut self,
        now: SimTime,
        core: CoreId,
        hold: SimTime,
        ic: &Interconnect,
    ) -> LockAcquire {
        let transfer = match self.last_owner {
            Some(prev) => ic.core_to_core(prev, core),
            None => SimTime::ZERO,
        };
        let start = now.max(self.free_at);
        let wait = start - now;
        let acquired_at = start + self.base + transfer;
        let released_at = acquired_at + hold;
        self.free_at = released_at;
        self.last_owner = Some(core);
        self.acquires.incr();
        if !wait.is_zero() {
            self.contended.incr();
        }
        self.wait_hist.record_time(wait);
        self.total_hold += hold;
        LockAcquire {
            acquired_at,
            released_at,
            wait,
        }
    }

    /// Label given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total acquisitions.
    pub fn acquires(&self) -> u64 {
        self.acquires.get()
    }

    /// Acquisitions that had to wait.
    pub fn contended(&self) -> u64 {
        self.contended.get()
    }

    /// Distribution of waiting time.
    pub fn wait_histogram(&self) -> &Histogram {
        &self.wait_hist
    }

    /// Fraction of acquires that waited (0.0 if never acquired).
    pub fn contention_ratio(&self) -> f64 {
        if self.acquires.get() == 0 {
            0.0
        } else {
            self.contended.get() as f64 / self.acquires.get() as f64
        }
    }
}

/// A reader/writer semaphore's contention model in the style of Linux's
/// `mmap_sem`.
///
/// Readers overlap, but every reader pays a serialized atomic update of the
/// reader-count cache line (plus a line transfer when the previous toucher
/// was another core); writers exclude readers and each other.
///
/// # Example
///
/// ```
/// use popcorn_hw::{RwLockSite, Interconnect, Topology, HwParams, CoreId};
/// use popcorn_sim::SimTime;
///
/// let params = HwParams::default();
/// let ic = Interconnect::new(Topology::new(1, 4), &params);
/// let mut sem = RwLockSite::new("mmap_sem", &params);
/// let t = SimTime::from_micros(1);
/// let hold = SimTime::from_micros(2);
///
/// // Two readers at once overlap almost entirely...
/// let r1 = sem.read_acquire(t, CoreId(0), hold, &ic);
/// let r2 = sem.read_acquire(t, CoreId(1), hold, &ic);
/// assert!(r2.acquired_at < r1.released_at);
/// // ...but a writer waits for both.
/// let w = sem.write_acquire(t, CoreId(2), hold, &ic);
/// assert!(w.acquired_at >= r1.released_at.max(r2.released_at));
/// ```
#[derive(Debug, Clone)]
pub struct RwLockSite {
    name: &'static str,
    atomic: SimTime,
    /// When the count cache line is next free for an atomic update.
    line_free_at: SimTime,
    line_owner: Option<CoreId>,
    /// When all queued/active writers are done.
    writer_free_at: SimTime,
    /// Latest end of any active reader section.
    readers_until: SimTime,
    read_acquires: Counter,
    write_acquires: Counter,
    read_wait: Histogram,
    write_wait: Histogram,
}

impl RwLockSite {
    /// Creates a reader/writer lock site.
    pub fn new(name: &'static str, params: &crate::HwParams) -> Self {
        RwLockSite {
            name,
            atomic: params.atomic_op(),
            line_free_at: SimTime::ZERO,
            line_owner: None,
            writer_free_at: SimTime::ZERO,
            readers_until: SimTime::ZERO,
            read_acquires: Counter::new(),
            write_acquires: Counter::new(),
            read_wait: Histogram::new(),
            write_wait: Histogram::new(),
        }
    }

    /// Serialized atomic touch of the count cache line; returns completion.
    fn line_op(&mut self, now: SimTime, core: CoreId, ic: &Interconnect) -> SimTime {
        let transfer = match self.line_owner {
            Some(prev) => ic.core_to_core(prev, core),
            None => SimTime::ZERO,
        };
        let start = now.max(self.line_free_at);
        let done = start + self.atomic + transfer;
        self.line_free_at = done;
        self.line_owner = Some(core);
        done
    }

    /// Simulates a read (shared) acquisition holding for `hold`.
    pub fn read_acquire(
        &mut self,
        now: SimTime,
        core: CoreId,
        hold: SimTime,
        ic: &Interconnect,
    ) -> LockAcquire {
        let line_done = self.line_op(now, core, ic);
        let acquired_at = line_done.max(self.writer_free_at);
        let released_at = acquired_at + hold;
        self.readers_until = self.readers_until.max(released_at);
        // Release decrements the count line too. Reserving the decrement's
        // line slot right after the increment preserves the line's aggregate
        // throughput ceiling (two atomics per read) without falsely blocking
        // overlapping readers behind this reader's critical section.
        self.line_free_at += self.atomic;
        self.read_acquires.incr();
        let wait = acquired_at.saturating_sub(now);
        self.read_wait.record_time(wait);
        LockAcquire {
            acquired_at,
            released_at,
            wait,
        }
    }

    /// Simulates a write (exclusive) acquisition holding for `hold`.
    pub fn write_acquire(
        &mut self,
        now: SimTime,
        core: CoreId,
        hold: SimTime,
        ic: &Interconnect,
    ) -> LockAcquire {
        let line_done = self.line_op(now, core, ic);
        let acquired_at = line_done.max(self.writer_free_at).max(self.readers_until);
        let released_at = acquired_at + hold;
        self.writer_free_at = released_at;
        self.write_acquires.incr();
        let wait = acquired_at.saturating_sub(now);
        self.write_wait.record_time(wait);
        LockAcquire {
            acquired_at,
            released_at,
            wait,
        }
    }

    /// Label given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total read acquisitions.
    pub fn read_acquires(&self) -> u64 {
        self.read_acquires.get()
    }

    /// Total write acquisitions.
    pub fn write_acquires(&self) -> u64 {
        self.write_acquires.get()
    }

    /// Distribution of reader waiting time (including line serialization).
    pub fn read_wait_histogram(&self) -> &Histogram {
        &self.read_wait
    }

    /// Distribution of writer waiting time.
    pub fn write_wait_histogram(&self) -> &Histogram {
        &self.write_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HwParams, Topology};

    fn setup() -> (HwParams, Interconnect) {
        let p = HwParams::default();
        let ic = Interconnect::new(Topology::new(2, 4), &p);
        (p, ic)
    }

    #[test]
    fn uncontended_acquire_has_no_wait() {
        let (p, ic) = setup();
        let mut l = LockSite::new("t", &p);
        let a = l.acquire(
            SimTime::from_micros(1),
            CoreId(0),
            SimTime::from_nanos(100),
            &ic,
        );
        assert_eq!(a.wait, SimTime::ZERO);
        assert_eq!(l.contended(), 0);
        assert_eq!(l.acquires(), 1);
    }

    #[test]
    fn simultaneous_acquires_serialize() {
        let (p, ic) = setup();
        let mut l = LockSite::new("t", &p);
        let t = SimTime::from_micros(1);
        let hold = SimTime::from_nanos(500);
        let mut prev_release = SimTime::ZERO;
        for core in 0..4u16 {
            let a = l.acquire(t, CoreId(core), hold, &ic);
            assert!(a.acquired_at >= prev_release);
            prev_release = a.released_at;
        }
        assert_eq!(l.contended(), 3);
        assert_eq!(l.contention_ratio(), 0.75);
    }

    #[test]
    fn wait_grows_linearly_with_queue_depth() {
        let (p, ic) = setup();
        let mut l = LockSite::new("t", &p);
        let t = SimTime::from_micros(1);
        let hold = SimTime::from_nanos(1_000);
        let waits: Vec<u64> = (0..8u16)
            .map(|c| l.acquire(t, CoreId(c), hold, &ic).wait.as_nanos())
            .collect();
        for w in waits.windows(2) {
            assert!(w[1] > w[0], "waits should increase: {waits:?}");
        }
    }

    #[test]
    fn ownership_transfer_charges_line_movement() {
        let (p, ic) = setup();
        let mut l = LockSite::new("t", &p);
        // Same core re-acquiring after release: no transfer.
        let a1 = l.acquire(SimTime::ZERO, CoreId(0), SimTime::ZERO, &ic);
        let a2 = l.acquire(a1.released_at, CoreId(0), SimTime::ZERO, &ic);
        let same_core_cost = a2.released_at - a1.released_at;
        // Different socket acquiring: pays cross-socket transfer.
        let a3 = l.acquire(a2.released_at, CoreId(4), SimTime::ZERO, &ic);
        let cross_cost = a3.released_at - a2.released_at;
        assert!(cross_cost > same_core_cost);
        assert_eq!(
            (cross_cost - same_core_cost).as_nanos(),
            p.line_transfer_cross_socket_ns
        );
    }

    #[test]
    fn lock_frees_after_idle_period() {
        let (p, ic) = setup();
        let mut l = LockSite::new("t", &p);
        l.acquire(SimTime::ZERO, CoreId(0), SimTime::from_micros(1), &ic);
        // Long after release: no waiting.
        let a = l.acquire(SimTime::from_millis(1), CoreId(1), SimTime::ZERO, &ic);
        assert_eq!(a.wait, SimTime::ZERO);
    }

    #[test]
    fn readers_overlap_writers_exclude() {
        let (p, ic) = setup();
        let mut s = RwLockSite::new("mmap_sem", &p);
        let t = SimTime::from_micros(10);
        let hold = SimTime::from_micros(5);
        let r1 = s.read_acquire(t, CoreId(0), hold, &ic);
        let r2 = s.read_acquire(t, CoreId(1), hold, &ic);
        // Readers overlap: second starts before first ends.
        assert!(r2.acquired_at < r1.released_at);
        let w = s.write_acquire(t, CoreId(2), hold, &ic);
        assert!(w.acquired_at >= r1.released_at.max(r2.released_at));
        // Reader after the writer waits for it.
        let r3 = s.read_acquire(t, CoreId(3), hold, &ic);
        assert!(r3.acquired_at >= w.released_at);
        assert_eq!(s.read_acquires(), 3);
        assert_eq!(s.write_acquires(), 1);
    }

    #[test]
    fn reader_line_serialization_accumulates() {
        // Many simultaneous readers: each later reader's acquire time is
        // pushed back by the serialized count-line atomics even though the
        // read sections themselves overlap.
        let (p, ic) = setup();
        let mut s = RwLockSite::new("mmap_sem", &p);
        let t = SimTime::from_micros(1);
        let hold = SimTime::from_micros(50);
        let first = s.read_acquire(t, CoreId(0), hold, &ic);
        let mut last = first;
        for core in 1..8u16 {
            last = s.read_acquire(t, CoreId(core), hold, &ic);
        }
        assert!(last.acquired_at > first.acquired_at);
        // But far less than full serialization.
        assert!(last.acquired_at < first.released_at);
    }

    #[test]
    fn writers_serialize_with_each_other() {
        let (p, ic) = setup();
        let mut s = RwLockSite::new("mmap_sem", &p);
        let t = SimTime::from_micros(1);
        let hold = SimTime::from_micros(2);
        let w1 = s.write_acquire(t, CoreId(0), hold, &ic);
        let w2 = s.write_acquire(t, CoreId(1), hold, &ic);
        assert!(w2.acquired_at >= w1.released_at);
    }

    #[test]
    fn busy_spans_request_to_release() {
        let (p, ic) = setup();
        let mut l = LockSite::new("t", &p);
        let t = SimTime::from_micros(1);
        let a = l.acquire(t, CoreId(0), SimTime::from_nanos(100), &ic);
        assert_eq!(a.busy(t), a.released_at - t);
    }
}
