//! Calibrated hardware cost constants.
//!
//! Defaults approximate the 2015-era multi-socket Xeon class machines the
//! Popcorn Linux evaluation used (see EXPERIMENTS.md for the calibration
//! sources). All fields are public so experiments can
//! override individual knobs and ablations can be expressed as parameter
//! diffs.

use popcorn_sim::SimTime;

/// Every hardware latency constant used by the simulation, in nanoseconds
/// unless noted.
///
/// # Example
///
/// ```
/// use popcorn_hw::HwParams;
///
/// let mut p = HwParams::default();
/// p.dram_remote_ns = 200; // slow remote memory for a NUMA-stress study
/// assert!(p.dram_remote_ns > p.dram_local_ns);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HwParams {
    /// Core clock in GHz; converts workload "cycles" to time.
    pub clock_ghz: f64,
    /// Local-socket DRAM access.
    pub dram_local_ns: u64,
    /// Remote-socket DRAM access (NUMA penalty).
    pub dram_remote_ns: u64,
    /// Last-level-cache hit (used for warm accesses).
    pub llc_hit_ns: u64,
    /// Transferring a modified cache line between cores on one socket.
    pub line_transfer_same_socket_ns: u64,
    /// Transferring a modified cache line across sockets.
    pub line_transfer_cross_socket_ns: u64,
    /// An uncontended atomic read-modify-write (lock-prefixed op).
    pub atomic_op_ns: u64,
    /// Uncontended spinlock acquire+release round trip.
    pub spinlock_uncontended_ns: u64,
    /// Delivery latency of an IPI from send to remote handler entry.
    pub ipi_latency_ns: u64,
    /// Cost of running the IPI handler on the target.
    pub ipi_handler_ns: u64,
    /// Fixed initiator-side cost of a TLB shootdown (building the cpumask,
    /// entering the flush path) before any IPIs are sent.
    pub tlb_shootdown_base_ns: u64,
    /// Local TLB invalidation (`invlpg`).
    pub tlb_invalidate_local_ns: u64,
    /// Copying one 4 KiB page between DRAM locations on the same socket.
    pub page_copy_same_socket_ns: u64,
    /// Copying one 4 KiB page across sockets.
    pub page_copy_cross_socket_ns: u64,
    /// A page-table walk against a local replica of the tables (all four
    /// levels in local DRAM or cache). Only charged when the walk-locality
    /// model is on (`page_table_replication`).
    pub local_replica_walk_ns: u64,
    /// A page-table walk when the tables live on another kernel's memory
    /// domain: four dependent pointer chases, each a full cross-fabric
    /// round trip that cannot overlap with the next (the walker needs
    /// level N's entry to find level N+1). Mitosis measures 3–4× per
    /// level just for NUMA-remote tables; cross-kernel adds the
    /// fabric hop on top.
    pub remote_page_walk_ns: u64,
    /// Applying one pushed page-table-entry update at a replica holder
    /// (write the PTE, invalidate the local TLB entry).
    pub pt_replica_update_ns: u64,
}

impl Default for HwParams {
    /// 2.4 GHz, 4-socket Xeon-class defaults (see EXPERIMENTS.md §Calibration).
    fn default() -> Self {
        HwParams {
            clock_ghz: 2.4,
            dram_local_ns: 90,
            dram_remote_ns: 145,
            llc_hit_ns: 15,
            line_transfer_same_socket_ns: 45,
            line_transfer_cross_socket_ns: 130,
            atomic_op_ns: 20,
            spinlock_uncontended_ns: 30,
            ipi_latency_ns: 1_200,
            ipi_handler_ns: 450,
            tlb_shootdown_base_ns: 900,
            tlb_invalidate_local_ns: 120,
            page_copy_same_socket_ns: 550,
            page_copy_cross_socket_ns: 1_100,
            // ~4 levels of local DRAM/cache vs 4 dependent cross-fabric
            // round trips (~575 ns each: remote DRAM + cross-socket
            // transfer + coherence, serialized by the pointer chase).
            local_replica_walk_ns: 120,
            remote_page_walk_ns: 2_300,
            pt_replica_update_ns: 210,
        }
    }
}

impl HwParams {
    /// Validates internal consistency (remote ≥ local, positive clock).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_ghz <= 0.0 {
            return Err(format!(
                "clock_ghz must be positive, got {}",
                self.clock_ghz
            ));
        }
        if self.dram_remote_ns < self.dram_local_ns {
            return Err(format!(
                "remote DRAM ({}) faster than local ({})",
                self.dram_remote_ns, self.dram_local_ns
            ));
        }
        if self.line_transfer_cross_socket_ns < self.line_transfer_same_socket_ns {
            return Err(format!(
                "cross-socket line transfer ({}) faster than same-socket ({})",
                self.line_transfer_cross_socket_ns, self.line_transfer_same_socket_ns
            ));
        }
        if self.page_copy_cross_socket_ns < self.page_copy_same_socket_ns {
            return Err(format!(
                "cross-socket page copy ({}) faster than same-socket ({})",
                self.page_copy_cross_socket_ns, self.page_copy_same_socket_ns
            ));
        }
        if self.remote_page_walk_ns < self.local_replica_walk_ns {
            return Err(format!(
                "remote page walk ({}) faster than local replica walk ({})",
                self.remote_page_walk_ns, self.local_replica_walk_ns
            ));
        }
        Ok(())
    }

    /// Uncontended spinlock round trip as time.
    pub fn spinlock_uncontended(&self) -> SimTime {
        SimTime::from_nanos(self.spinlock_uncontended_ns)
    }

    /// Atomic op as time.
    pub fn atomic_op(&self) -> SimTime {
        SimTime::from_nanos(self.atomic_op_ns)
    }

    /// IPI delivery latency as time.
    pub fn ipi_latency(&self) -> SimTime {
        SimTime::from_nanos(self.ipi_latency_ns)
    }

    /// IPI handler cost as time.
    pub fn ipi_handler(&self) -> SimTime {
        SimTime::from_nanos(self.ipi_handler_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(HwParams::default().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_inverted_numa() {
        let mut p = HwParams::default();
        p.dram_remote_ns = p.dram_local_ns - 1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_clock() {
        let p = HwParams {
            clock_ghz: 0.0,
            ..HwParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_inverted_line_transfer() {
        let p = HwParams {
            line_transfer_cross_socket_ns: 1,
            ..HwParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_inverted_page_walk() {
        let p = HwParams {
            remote_page_walk_ns: 1,
            ..HwParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn time_accessors_match_fields() {
        let p = HwParams::default();
        assert_eq!(p.atomic_op().as_nanos(), p.atomic_op_ns);
        assert_eq!(p.ipi_latency().as_nanos(), p.ipi_latency_ns);
        assert_eq!(p.ipi_handler().as_nanos(), p.ipi_handler_ns);
        assert_eq!(
            p.spinlock_uncontended().as_nanos(),
            p.spinlock_uncontended_ns
        );
    }
}
