//! Core and socket identifiers and the machine topology.

use std::fmt;

/// A hardware core (hyperthreading is not modelled; one core = one logical
/// CPU as in the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u16);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A NUMA socket (one memory controller per socket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SocketId(pub u16);

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "socket{}", self.0)
    }
}

/// The machine layout: `sockets × cores_per_socket` cores, numbered
/// socket-major (cores 0..c-1 on socket 0, c..2c-1 on socket 1, ...), which
/// matches how Popcorn's evaluation partitioned kernels along socket
/// boundaries.
///
/// # Example
///
/// ```
/// use popcorn_hw::{Topology, CoreId, SocketId};
///
/// let t = Topology::new(4, 16);
/// assert_eq!(t.num_cores(), 64);
/// assert_eq!(t.socket_of(CoreId(17)), SocketId(1));
/// assert!(t.same_socket(CoreId(0), CoreId(15)));
/// assert!(!t.same_socket(CoreId(15), CoreId(16)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    sockets: u16,
    cores_per_socket: u16,
    /// Core-complex (CCX) groups per socket: the intermediate sharing
    /// domain between a core and its socket (an L3 complex on AMD-style
    /// parts). `1` means the socket is one undivided complex, which is the
    /// behaviour of every constructor that predates the CCX dimension.
    ccx_per_socket: u16,
}

impl Topology {
    /// Creates a topology (each socket is a single CCX).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sockets: u16, cores_per_socket: u16) -> Self {
        Topology::with_ccx(sockets, 1, cores_per_socket)
    }

    /// Creates a topology with an explicit CCX layer: `sockets ×
    /// ccx_per_socket × cores_per_ccx` cores, numbered socket-major then
    /// CCX-major.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn with_ccx(sockets: u16, ccx_per_socket: u16, cores_per_ccx: u16) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert!(ccx_per_socket > 0, "need at least one CCX per socket");
        assert!(cores_per_ccx > 0, "need at least one core per CCX");
        Topology {
            sockets,
            cores_per_socket: ccx_per_socket * cores_per_ccx,
            ccx_per_socket,
        }
    }

    /// A single-socket topology with `cores` cores.
    pub fn single_socket(cores: u16) -> Self {
        Topology::new(1, cores)
    }

    /// The 4-socket × 16-core layout used as the reproduction's default
    /// 64-core machine (matching the paper-era evaluation scale).
    pub fn paper_default() -> Self {
        Topology::new(4, 16)
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> u16 {
        self.sockets
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> u16 {
        self.cores_per_socket
    }

    /// CCX groups per socket (1 when the CCX layer is not modelled).
    pub fn ccx_per_socket(&self) -> u16 {
        self.ccx_per_socket
    }

    /// Cores per CCX.
    pub fn cores_per_ccx(&self) -> u16 {
        self.cores_per_socket / self.ccx_per_socket
    }

    /// Total CCX count across the machine.
    pub fn num_ccx(&self) -> u16 {
        self.sockets * self.ccx_per_socket
    }

    /// The machine-wide CCX index a core belongs to (socket-major).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn ccx_of(&self, core: CoreId) -> u16 {
        assert!(self.contains(core), "{core} out of range for {self:?}");
        core.0 / self.cores_per_ccx()
    }

    /// Whether two cores share a CCX.
    pub fn same_ccx(&self, a: CoreId, b: CoreId) -> bool {
        self.ccx_of(a) == self.ccx_of(b)
    }

    /// Total core count.
    pub fn num_cores(&self) -> u16 {
        self.sockets * self.cores_per_socket
    }

    /// The socket a core lives on.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        assert!(self.contains(core), "{core} out of range for {self:?}");
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Whether two cores share a socket.
    pub fn same_socket(&self, a: CoreId, b: CoreId) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// Whether the core id is valid for this topology.
    pub fn contains(&self, core: CoreId) -> bool {
        core.0 < self.num_cores()
    }

    /// NUMA hop distance between two sockets (linear interconnect model:
    /// the hop count is the socket-index gap, 0 on the same socket).
    pub fn socket_distance(&self, a: SocketId, b: SocketId) -> u16 {
        assert!(a.0 < self.sockets && b.0 < self.sockets, "socket range");
        a.0.abs_diff(b.0)
    }

    /// Iterates all cores in id order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }

    /// Iterates the cores of one socket in id order.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn cores_of(&self, socket: SocketId) -> impl Iterator<Item = CoreId> {
        assert!(socket.0 < self.sockets, "{socket} out of range");
        let base = socket.0 * self.cores_per_socket;
        (base..base + self.cores_per_socket).map(CoreId)
    }

    /// Splits the cores into `n` contiguous, near-equal partitions — how the
    /// replicated-kernel and multikernel OS models assign cores to kernels.
    /// Earlier partitions receive the remainder cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the core count.
    pub fn partition(&self, n: u16) -> Vec<Vec<CoreId>> {
        assert!(n > 0, "cannot partition into zero parts");
        let total = self.num_cores();
        assert!(n <= total, "more partitions ({n}) than cores ({total})");
        let base = total / n;
        let extra = total % n;
        let mut parts = Vec::with_capacity(n as usize);
        let mut next = 0u16;
        for i in 0..n {
            let len = base + u16::from(i < extra);
            parts.push((next..next + len).map(CoreId).collect());
            next += len;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_major_numbering() {
        let t = Topology::new(2, 4);
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(3)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(4)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(7)), SocketId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_rejects_out_of_range() {
        Topology::new(2, 4).socket_of(CoreId(8));
    }

    #[test]
    fn cores_iterates_all() {
        let t = Topology::new(2, 3);
        let cores: Vec<_> = t.cores().collect();
        assert_eq!(cores.len(), 6);
        assert_eq!(cores[0], CoreId(0));
        assert_eq!(cores[5], CoreId(5));
    }

    #[test]
    fn cores_of_socket() {
        let t = Topology::new(3, 2);
        let s1: Vec<_> = t.cores_of(SocketId(1)).collect();
        assert_eq!(s1, vec![CoreId(2), CoreId(3)]);
    }

    #[test]
    fn partition_even() {
        let t = Topology::new(2, 4);
        let parts = t.partition(4);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.len() == 2));
        // Contiguous and covering.
        let flat: Vec<_> = parts.iter().flatten().copied().collect();
        assert_eq!(flat, t.cores().collect::<Vec<_>>());
    }

    #[test]
    fn partition_uneven_front_loads_remainder() {
        let t = Topology::new(1, 7);
        let parts = t.partition(3);
        let lens: Vec<_> = parts.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![3, 2, 2]);
    }

    #[test]
    fn partition_one_per_core() {
        let t = Topology::new(1, 5);
        let parts = t.partition(5);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    #[should_panic(expected = "more partitions")]
    fn partition_rejects_too_many() {
        Topology::new(1, 2).partition(3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CoreId(3).to_string(), "cpu3");
        assert_eq!(SocketId(1).to_string(), "socket1");
    }

    #[test]
    fn default_constructors_model_one_ccx_per_socket() {
        let t = Topology::new(2, 4);
        assert_eq!(t.ccx_per_socket(), 1);
        assert_eq!(t.cores_per_ccx(), 4);
        assert_eq!(t.num_ccx(), 2);
        assert_eq!(t.ccx_of(CoreId(3)), 0);
        assert_eq!(t.ccx_of(CoreId(4)), 1);
        // The CCX field participates in Eq, so legacy constructors must
        // stay comparable across call sites.
        assert_eq!(Topology::new(2, 4), Topology::with_ccx(2, 1, 4));
    }

    #[test]
    fn ccx_layer_nests_inside_sockets() {
        let t = Topology::with_ccx(4, 8, 8); // the 256-core E16 box
        assert_eq!(t.num_cores(), 256);
        assert_eq!(t.cores_per_socket(), 64);
        assert_eq!(t.num_ccx(), 32);
        assert_eq!(t.ccx_of(CoreId(0)), 0);
        assert_eq!(t.ccx_of(CoreId(7)), 0);
        assert_eq!(t.ccx_of(CoreId(8)), 1);
        assert_eq!(t.ccx_of(CoreId(64)), 8);
        assert!(t.same_ccx(CoreId(0), CoreId(7)));
        assert!(!t.same_ccx(CoreId(7), CoreId(8)));
        // Every CCX nests in exactly one socket.
        for c in t.cores() {
            let ccx = t.ccx_of(c);
            assert_eq!(SocketId(ccx / t.ccx_per_socket()), t.socket_of(c));
        }
        // Contiguous partitioning by CCX count lands on CCX boundaries.
        let parts = t.partition(t.num_ccx());
        for (i, p) in parts.iter().enumerate() {
            assert!(p.iter().all(|&c| t.ccx_of(c) as usize == i));
        }
    }

    #[test]
    fn socket_distance_is_linear_hops() {
        let t = Topology::new(4, 2);
        assert_eq!(t.socket_distance(SocketId(0), SocketId(0)), 0);
        assert_eq!(t.socket_distance(SocketId(0), SocketId(3)), 3);
        assert_eq!(t.socket_distance(SocketId(3), SocketId(1)), 2);
    }
}
