//! Randomized property tests for the lock-site queuing models: critical
//! sections never overlap, waits are exactly the queueing delay, and
//! reader/writer exclusion holds under arbitrary interleavings. Driven by
//! the deterministic [`SimRng`] (the build is offline, so no external
//! property-testing framework).

use popcorn_hw::{CoreId, HwParams, Interconnect, LockSite, RwLockSite, Topology};
use popcorn_sim::{SimRng, SimTime};

fn setup() -> (HwParams, Interconnect) {
    let p = HwParams::default();
    let ic = Interconnect::new(Topology::new(4, 16), &p);
    (p, ic)
}

/// Exclusive critical sections never overlap, regardless of request times,
/// cores and hold durations; waits are never negative and a request after
/// the previous release waits zero.
#[test]
fn lock_site_sections_never_overlap() {
    let mut rng = SimRng::new(0x5EED_2001);
    for _ in 0..256 {
        let reqs: Vec<(u64, u16, u64)> = {
            let len = rng.range_u64(1, 80) as usize;
            (0..len)
                .map(|_| {
                    (
                        rng.range_u64(0, 10_000),
                        rng.range_u64(0, 64) as u16,
                        rng.range_u64(0, 3_000),
                    )
                })
                .collect()
        };
        let (p, ic) = setup();
        let mut site = LockSite::new("prop", &p);
        let mut clock = 0u64;
        let mut prev_release = SimTime::ZERO;
        let mut contended_expect = 0u64;
        for (advance, core, hold) in reqs {
            clock += advance;
            let now = SimTime::from_nanos(clock);
            let a = site.acquire(now, CoreId(core), SimTime::from_nanos(hold), &ic);
            assert!(a.acquired_at >= now);
            assert!(a.released_at >= a.acquired_at);
            assert!(
                a.acquired_at >= prev_release,
                "overlapping critical sections"
            );
            if now < prev_release {
                contended_expect += 1;
                assert_eq!(a.wait, prev_release - now);
            } else {
                assert_eq!(a.wait, SimTime::ZERO);
            }
            prev_release = a.released_at;
        }
        assert_eq!(site.contended(), contended_expect);
    }
}

/// Writers exclude everything; readers exclude writers but overlap each
/// other (modulo the serialized count-line atomics).
#[test]
fn rwlock_exclusion_invariants() {
    let mut rng = SimRng::new(0x5EED_2002);
    for _ in 0..256 {
        let ops: Vec<(bool, u64, u16, u64)> = {
            let len = rng.range_u64(1, 80) as usize;
            (0..len)
                .map(|_| {
                    (
                        rng.chance(0.5),
                        rng.range_u64(0, 5_000),
                        rng.range_u64(0, 64) as u16,
                        rng.range_u64(1, 4_000),
                    )
                })
                .collect()
        };
        let (p, ic) = setup();
        let mut sem = RwLockSite::new("prop", &p);
        let mut clock = 0u64;
        let mut writer_sections: Vec<(SimTime, SimTime)> = Vec::new();
        let mut reader_sections: Vec<(SimTime, SimTime)> = Vec::new();
        for (is_write, advance, core, hold) in ops {
            clock += advance;
            let now = SimTime::from_nanos(clock);
            let hold = SimTime::from_nanos(hold);
            if is_write {
                let a = sem.write_acquire(now, CoreId(core), hold, &ic);
                // A writer overlaps no earlier reader or writer section.
                for &(s, e) in writer_sections.iter().chain(reader_sections.iter()) {
                    assert!(
                        a.acquired_at >= e || a.released_at <= s,
                        "writer overlaps an earlier section"
                    );
                }
                writer_sections.push((a.acquired_at, a.released_at));
            } else {
                let a = sem.read_acquire(now, CoreId(core), hold, &ic);
                for &(s, e) in &writer_sections {
                    assert!(
                        a.acquired_at >= e || a.released_at <= s,
                        "reader overlaps a writer"
                    );
                }
                reader_sections.push((a.acquired_at, a.released_at));
            }
        }
        assert_eq!(
            sem.read_acquires() + sem.write_acquires(),
            (reader_sections.len() + writer_sections.len()) as u64
        );
    }
}

/// Lock throughput degrades monotonically-ish with offered load: a denser
/// arrival schedule never accumulates less waiting than a sparser one.
#[test]
fn denser_arrivals_never_finish_earlier() {
    let mut rng = SimRng::new(0x5EED_2003);
    for _ in 0..256 {
        let gap = rng.range_u64(0, 500);
        let n = rng.range_u64(2, 40) as usize;
        let (p, ic) = setup();
        let hold = SimTime::from_nanos(400);
        let total_wait = |gap: u64| {
            let mut site = LockSite::new("prop", &p);
            let mut total = SimTime::ZERO;
            for i in 0..n {
                let now = SimTime::from_nanos(gap * i as u64);
                total += site.acquire(now, CoreId((i % 64) as u16), hold, &ic).wait;
            }
            total
        };
        let wait_dense = total_wait(gap);
        let wait_sparse = total_wait(gap + 300);
        assert!(
            wait_sparse <= wait_dense,
            "sparser arrivals must wait no more"
        );
    }
}
