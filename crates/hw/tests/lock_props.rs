//! Property tests for the lock-site queuing models: critical sections
//! never overlap, waits are exactly the queueing delay, and reader/writer
//! exclusion holds under arbitrary interleavings.

use popcorn_hw::{CoreId, HwParams, Interconnect, LockSite, RwLockSite, Topology};
use popcorn_sim::SimTime;
use proptest::prelude::*;

fn setup() -> (HwParams, Interconnect) {
    let p = HwParams::default();
    let ic = Interconnect::new(Topology::new(4, 16), &p);
    (p, ic)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exclusive critical sections never overlap, regardless of request
    /// times, cores and hold durations; waits are never negative and a
    /// request after the previous release waits zero.
    #[test]
    fn lock_site_sections_never_overlap(
        reqs in proptest::collection::vec((0u64..10_000, 0u16..64, 0u64..3_000), 1..80)
    ) {
        let (p, ic) = setup();
        let mut site = LockSite::new("prop", &p);
        let mut clock = 0u64;
        let mut prev_release = SimTime::ZERO;
        let mut contended_expect = 0u64;
        for (advance, core, hold) in reqs {
            clock += advance;
            let now = SimTime::from_nanos(clock);
            let a = site.acquire(now, CoreId(core), SimTime::from_nanos(hold), &ic);
            prop_assert!(a.acquired_at >= now);
            prop_assert!(a.released_at >= a.acquired_at);
            prop_assert!(a.acquired_at >= prev_release, "overlapping critical sections");
            if now < prev_release {
                contended_expect += 1;
                prop_assert_eq!(a.wait, prev_release - now);
            } else {
                prop_assert_eq!(a.wait, SimTime::ZERO);
            }
            prev_release = a.released_at;
        }
        prop_assert_eq!(site.contended(), contended_expect);
    }

    /// Writers exclude everything; readers exclude writers but overlap
    /// each other (modulo the serialized count-line atomics).
    #[test]
    fn rwlock_exclusion_invariants(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..5_000, 0u16..64, 1u64..4_000),
            1..80,
        )
    ) {
        let (p, ic) = setup();
        let mut sem = RwLockSite::new("prop", &p);
        let mut clock = 0u64;
        let mut writer_sections: Vec<(SimTime, SimTime)> = Vec::new();
        let mut reader_sections: Vec<(SimTime, SimTime)> = Vec::new();
        for (is_write, advance, core, hold) in ops {
            clock += advance;
            let now = SimTime::from_nanos(clock);
            let hold = SimTime::from_nanos(hold);
            if is_write {
                let a = sem.write_acquire(now, CoreId(core), hold, &ic);
                // A writer overlaps no earlier reader or writer section.
                for &(s, e) in writer_sections.iter().chain(reader_sections.iter()) {
                    prop_assert!(a.acquired_at >= e || a.released_at <= s,
                        "writer overlaps an earlier section");
                }
                writer_sections.push((a.acquired_at, a.released_at));
            } else {
                let a = sem.read_acquire(now, CoreId(core), hold, &ic);
                for &(s, e) in &writer_sections {
                    prop_assert!(a.acquired_at >= e || a.released_at <= s,
                        "reader overlaps a writer");
                }
                reader_sections.push((a.acquired_at, a.released_at));
            }
        }
        prop_assert_eq!(
            sem.read_acquires() + sem.write_acquires(),
            (reader_sections.len() + writer_sections.len()) as u64
        );
    }

    /// Lock throughput degrades monotonically-ish with offered load: a
    /// denser arrival schedule never finishes earlier than a sparser one.
    #[test]
    fn denser_arrivals_never_finish_earlier(gap in 0u64..500, n in 2usize..40) {
        let (p, ic) = setup();
        let hold = SimTime::from_nanos(400);
        let run = |gap: u64| {
            let mut site = LockSite::new("prop", &p);
            let mut last = SimTime::ZERO;
            for i in 0..n {
                let now = SimTime::from_nanos(gap * i as u64);
                last = site
                    .acquire(now, CoreId((i % 64) as u16), hold, &ic)
                    .released_at;
            }
            last
        };
        let dense = run(gap);
        let sparse = run(gap + 300);
        prop_assert!(sparse >= dense.min(sparse), "sanity");
        // The last release under sparser arrivals is at least as late in
        // absolute time, but waits must be no larger.
        let wait_dense = {
            let mut site = LockSite::new("prop", &p);
            let mut total = SimTime::ZERO;
            for i in 0..n {
                let now = SimTime::from_nanos(gap * i as u64);
                total += site.acquire(now, CoreId((i % 64) as u16), hold, &ic).wait;
            }
            total
        };
        let wait_sparse = {
            let mut site = LockSite::new("prop", &p);
            let mut total = SimTime::ZERO;
            for i in 0..n {
                let now = SimTime::from_nanos((gap + 300) * i as u64);
                total += site.acquire(now, CoreId((i % 64) as u16), hold, &ic).wait;
            }
            total
        };
        prop_assert!(wait_sparse <= wait_dense, "sparser arrivals must wait no more");
    }
}
