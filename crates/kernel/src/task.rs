//! Task (thread) control blocks.

use std::fmt;

use popcorn_hw::CoreId;
use popcorn_msg::KernelId;
use popcorn_sim::SimTime;

use crate::program::{Program, Resume};
use crate::types::{CpuContext, GroupId, Tid, VAddr};

/// Why a task is off the run queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Sleeping on a futex word.
    Futex(VAddr),
    /// In `nanosleep`.
    Sleep,
    /// Mid-migration (context in flight to another kernel).
    Migrating,
    /// Waiting for a page/VMA/remote operation to complete.
    Remote(&'static str),
}

/// Lifecycle state of a task on one kernel instance.
#[derive(Debug)]
pub enum TaskState {
    /// On a run queue, not currently executing.
    Ready,
    /// Executing on its assigned core.
    Running,
    /// In the middle of a syscall that will complete at a known time.
    InSyscall,
    /// Off the run queues.
    Blocked(BlockReason),
    /// Migrated away; this entry is the dormant *shadow* the paper keeps
    /// for cheap back-migration.
    MigratedAway {
        /// Kernel now hosting the thread.
        to: KernelId,
    },
    /// Finished.
    Exited(i32),
}

/// Per-task accounting used by the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskStats {
    /// Virtual CPU time consumed by user ops.
    pub cpu_time: SimTime,
    /// Syscalls issued.
    pub syscalls: u64,
    /// Page faults taken.
    pub faults: u64,
    /// Inter-kernel migrations performed.
    pub migrations: u64,
    /// Context switches experienced.
    pub ctx_switches: u64,
}

/// A thread's kernel-side control block.
///
/// The `program` is present while this kernel hosts the thread; it is
/// `None` for shadows of migrated-away threads (the program travelled with
/// the migration message).
pub struct Task {
    /// Globally unique id.
    pub tid: Tid,
    /// Distributed thread group membership.
    pub group: GroupId,
    /// The user program, when hosted here.
    pub program: Option<Box<dyn Program>>,
    /// Architectural state (marshalled on migration).
    pub ctx: CpuContext,
    /// Lifecycle state.
    pub state: TaskState,
    /// Assigned core.
    pub core: CoreId,
    /// What to feed the program on its next step.
    pub resume: Resume,
    /// Accounting.
    pub stats: TaskStats,
}

impl Task {
    /// Creates a ready task assigned to `core`.
    pub fn new(tid: Tid, group: GroupId, program: Box<dyn Program>, core: CoreId) -> Self {
        Task {
            tid,
            group,
            program: Some(program),
            ctx: CpuContext::default(),
            state: TaskState::Ready,
            core,
            resume: Resume::Start,
            stats: TaskStats::default(),
        }
    }

    /// Whether the task can be placed on a run queue.
    pub fn is_ready(&self) -> bool {
        matches!(self.state, TaskState::Ready)
    }

    /// Whether the task has exited.
    pub fn is_exited(&self) -> bool {
        matches!(self.state, TaskState::Exited(_))
    }

    /// Whether this entry is a dormant shadow of a migrated-away thread.
    pub fn is_shadow(&self) -> bool {
        matches!(self.state, TaskState::MigratedAway { .. })
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("tid", &format_args!("{}", self.tid))
            .field("group", &format_args!("{}", self.group))
            .field("state", &self.state)
            .field("core", &self.core)
            .field("has_program", &self.program.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Op, ProgEnv};

    #[derive(Debug)]
    struct Nop;
    impl Program for Nop {
        fn step(&mut self, _resume: Resume, _env: &ProgEnv) -> Op {
            Op::Exit(0)
        }
    }

    fn task() -> Task {
        Task::new(
            Tid::new(KernelId(0), 1),
            GroupId(Tid::new(KernelId(0), 1)),
            Box::new(Nop),
            CoreId(0),
        )
    }

    #[test]
    fn new_task_is_ready_with_program() {
        let t = task();
        assert!(t.is_ready());
        assert!(!t.is_exited());
        assert!(!t.is_shadow());
        assert!(t.program.is_some());
        assert_eq!(t.resume, Resume::Start);
    }

    #[test]
    fn shadow_detection() {
        let mut t = task();
        t.state = TaskState::MigratedAway { to: KernelId(1) };
        t.program = None;
        assert!(t.is_shadow());
        assert!(!t.is_ready());
    }

    #[test]
    fn debug_shows_key_fields_without_program_dump() {
        let t = task();
        let s = format!("{t:?}");
        assert!(s.contains("t0.1"));
        assert!(s.contains("has_program: true"));
    }
}
