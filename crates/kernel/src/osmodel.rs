//! The OS-model scaffolding shared by Popcorn and the baselines.
//!
//! An *OS model* is a whole-machine simulation handler: it owns one or more
//! [`Kernel`] instances and supplies the policy the kernel mechanism defers
//! — syscall implementations, fault resolution, synchronization-word
//! semantics, and (for the replicated kernel) cross-kernel messaging.
//!
//! The shared pieces here are:
//!
//! - [`OsEvent`] — the event alphabet (core execution, timer wakes, plus a
//!   model-specific `Custom` payload for messages/protocol steps);
//! - [`OsMachine`] — the policy hooks a model implements;
//! - [`dispatch`] — the common event-routing skeleton a model's
//!   [`Handler`](popcorn_sim::Handler) impl delegates to;
//! - [`OsModel`] + [`RunReport`] — the harness-facing interface every model
//!   (Popcorn, SMP, multikernel) exposes so experiments can treat them
//!   uniformly.

use std::collections::BTreeMap;

use popcorn_hw::{CoreId, Topology};
use popcorn_sim::{Scheduler, SimTime, StopCondition};

use crate::kernel::{Kernel, RunOutcome};
use crate::program::{Program, Resume, RmwOp, SysResult, SyscallReq};
use crate::types::{GroupId, PageNo, Tid, VAddr};

/// Default event budget for [`OsModel::run`]: generous enough for every
/// experiment in the suite, small enough to catch protocol livelock.
pub const DEFAULT_EVENT_BUDGET: u64 = 50_000_000;

/// Simulation events common to all OS models.
#[derive(Debug)]
pub enum OsEvent<X> {
    /// Execute a core of a kernel.
    CoreRun {
        /// Kernel index within the model.
        kernel: u16,
        /// The core.
        core: CoreId,
    },
    /// A sleep timer fired for a task.
    TimerWake {
        /// Kernel index within the model.
        kernel: u16,
        /// The sleeping task.
        tid: Tid,
    },
    /// Model-specific payload (inter-kernel messages, protocol steps).
    Custom(X),
}

/// Schedules a `CoreRun` for `(kernel, core)` at `at` (clamped to now).
pub fn ensure_core_run<X>(
    sched: &mut Scheduler<OsEvent<X>>,
    kernel: u16,
    core: CoreId,
    at: SimTime,
) {
    sched.at(at.max(sched.now()), OsEvent::CoreRun { kernel, core });
}

/// Policy hooks an OS model implements; [`dispatch`] routes events to them.
#[allow(clippy::too_many_arguments)]
pub trait OsMachine {
    /// Model-specific event payload.
    type Msg;

    /// The kernel instances (index = the `kernel` field of [`OsEvent`]).
    fn kernels_mut(&mut self) -> &mut [Kernel];

    /// Implements a syscall trapped at `at` by `tid` (currently `InSyscall`
    /// and occupying `core` of kernel `ki`). The implementation must either
    /// finish the syscall ([`Kernel::finish_syscall`]) or block the task.
    fn handle_syscall(
        &mut self,
        sched: &mut Scheduler<OsEvent<Self::Msg>>,
        ki: usize,
        core: CoreId,
        tid: Tid,
        req: SyscallReq,
        at: SimTime,
    );

    /// Implements an atomic RMW on a synchronization word.
    fn handle_sync_op(
        &mut self,
        sched: &mut Scheduler<OsEvent<Self::Msg>>,
        ki: usize,
        core: CoreId,
        tid: Tid,
        addr: VAddr,
        op: RmwOp,
        at: SimTime,
    );

    /// Resolves a page fault (absent page, write upgrade, or missing VMA).
    #[allow(clippy::too_many_arguments)]
    fn handle_fault(
        &mut self,
        sched: &mut Scheduler<OsEvent<Self::Msg>>,
        ki: usize,
        core: CoreId,
        tid: Tid,
        page: PageNo,
        write: bool,
        no_vma: bool,
        at: SimTime,
    );

    /// Reacts to a thread exit (group accounting, waking joiners).
    fn handle_exit(
        &mut self,
        sched: &mut Scheduler<OsEvent<Self::Msg>>,
        ki: usize,
        core: CoreId,
        tid: Tid,
        code: i32,
        at: SimTime,
    );

    /// Handles a model-specific event.
    fn handle_custom(
        &mut self,
        sched: &mut Scheduler<OsEvent<Self::Msg>>,
        msg: Self::Msg,
        now: SimTime,
    );
}

/// Runs one core and routes the outcome to the model's hooks. OS models
/// call this (and nothing else) from their `Handler::handle`.
pub fn dispatch<M: OsMachine>(
    m: &mut M,
    now: SimTime,
    ev: OsEvent<M::Msg>,
    sched: &mut Scheduler<OsEvent<M::Msg>>,
) {
    match ev {
        OsEvent::CoreRun { kernel, core } => {
            let ki = kernel as usize;
            let outcome = m.kernels_mut()[ki].run_core(now, core);
            match outcome {
                RunOutcome::Idle => {}
                RunOutcome::Busy { until } => ensure_core_run(sched, kernel, core, until),
                RunOutcome::Preempted { at } => ensure_core_run(sched, kernel, core, at),
                RunOutcome::Syscall { tid, req, at } => {
                    m.handle_syscall(sched, ki, core, tid, req, at)
                }
                RunOutcome::SyncOp { tid, addr, op, at } => {
                    m.handle_sync_op(sched, ki, core, tid, addr, op, at)
                }
                RunOutcome::Fault {
                    tid,
                    page,
                    write,
                    no_vma,
                    at,
                } => m.handle_fault(sched, ki, core, tid, page, write, no_vma, at),
                RunOutcome::Exited { tid, code, at } => {
                    m.handle_exit(sched, ki, core, tid, code, at);
                    ensure_core_run(sched, kernel, core, at);
                }
            }
        }
        OsEvent::TimerWake { kernel, tid } => {
            let k = &mut m.kernels_mut()[kernel as usize];
            if let Some(task) = k.task_mut(tid) {
                task.resume = Resume::Sys(SysResult::Val(0));
                let core = k.wake(tid, now);
                ensure_core_run(sched, kernel, core, now);
            }
        }
        OsEvent::Custom(x) => m.handle_custom(sched, x, now),
    }
}

/// Outcome of running an OS model.
///
/// Marked `#[must_use]`: silently discarding a report usually hides an
/// unclean run (stuck tasks, budget exhaustion) — check [`RunReport::is_clean`]
/// or bind it explicitly.
#[derive(Debug, Clone)]
#[must_use]
pub struct RunReport {
    /// Model name (`"popcorn"`, `"smp"`, `"multikernel"`).
    pub os: &'static str,
    /// Virtual time when the run ended.
    pub finished_at: SimTime,
    /// Threads that exited.
    pub exited_tasks: u64,
    /// Threads still blocked when the event queue drained (deadlock
    /// indicator; empty on a healthy run).
    pub stuck_tasks: Vec<Tid>,
    /// Simulation events processed.
    pub events: u64,
    /// Why the simulation stopped.
    pub stop: StopCondition,
    /// Named scalar metrics (counters, mean latencies) for the harness.
    pub metrics: BTreeMap<String, f64>,
}

impl RunReport {
    /// True when every loaded thread ran to completion.
    pub fn is_clean(&self) -> bool {
        self.stop == StopCondition::QueueEmpty && self.stuck_tasks.is_empty()
    }

    /// A metric by name (0.0 when absent).
    pub fn metric(&self, name: &str) -> f64 {
        self.metrics.get(name).copied().unwrap_or(0.0)
    }
}

/// How a replicated-kernel model clusters cores into kernel instances —
/// the cluster-of-kernels axis of the lock-granularity design space. Each
/// variant maps a [`Topology`] sharing domain to one kernel, so the kernel
/// count (and hence the cross-kernel traffic pattern) is derived from the
/// machine instead of hand-picked per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClustering {
    /// One kernel per core: maximal replication, every sharing is a
    /// message (the classic multikernel limit).
    PerCore,
    /// One kernel per CCX: cores of an L3 complex share a kernel, CCX
    /// boundaries are messages.
    PerCcx,
    /// One kernel per NUMA socket: the paper-era Popcorn layout.
    PerSocket,
}

impl KernelClustering {
    /// All clusterings, coarse to fine.
    pub const ALL: [KernelClustering; 3] = [
        KernelClustering::PerSocket,
        KernelClustering::PerCcx,
        KernelClustering::PerCore,
    ];

    /// Number of kernel instances this clustering yields on `topo`.
    /// Because cores are numbered socket-major and CCX-major within a
    /// socket, `topo.partition(kernel_count)` lands every kernel exactly on
    /// its cluster's cores.
    pub fn kernel_count(self, topo: Topology) -> u16 {
        match self {
            KernelClustering::PerCore => topo.num_cores(),
            KernelClustering::PerCcx => topo.num_ccx(),
            KernelClustering::PerSocket => topo.num_sockets(),
        }
    }

    /// Short label for tables.
    pub fn name(self) -> &'static str {
        match self {
            KernelClustering::PerCore => "per-core",
            KernelClustering::PerCcx => "per-ccx",
            KernelClustering::PerSocket => "per-socket",
        }
    }
}

/// Harness-facing interface implemented by every OS model.
pub trait OsModel {
    /// Short model name for tables.
    fn name(&self) -> &'static str;

    /// The machine topology the model runs on.
    fn topology(&self) -> Topology;

    /// Creates a new process (thread group) whose leader runs `program`.
    /// Threads are then created by the program itself via `Clone` syscalls.
    fn load(&mut self, program: Box<dyn Program>) -> GroupId;

    /// Runs until the event queue drains, a horizon passes, or the event
    /// budget is exhausted.
    fn run_with(&mut self, horizon: SimTime, event_budget: u64) -> RunReport;

    /// Runs to completion with the default budget.
    fn run(&mut self) -> RunReport {
        self.run_with(SimTime::MAX, DEFAULT_EVENT_BUDGET)
    }
}

/// Folds the kernel-mechanism counters shared by all models into a metric
/// map (model-specific metrics are layered on top by each model).
pub fn base_metrics(kernels: &[Kernel]) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    let mut syscalls = 0u64;
    let mut faults = 0u64;
    let mut ctx = 0u64;
    let mut spawned = 0u64;
    let mut exited = 0u64;
    let mut segv = 0u64;
    for k in kernels {
        syscalls += k.stats.syscalls.get();
        faults += k.stats.faults.get();
        ctx += k.stats.ctx_switches.get();
        spawned += k.stats.spawned.get();
        exited += k.stats.exited.get();
        segv += k.stats.segv.get();
    }
    m.insert("syscalls".into(), syscalls as f64);
    m.insert("faults".into(), faults as f64);
    m.insert("ctx_switches".into(), ctx as f64);
    m.insert("spawned".into(), spawned as f64);
    m.insert("exited".into(), exited as f64);
    m.insert("segv".into(), segv as f64);
    m
}

/// Collects blocked (potentially deadlocked) tasks across kernels.
pub fn stuck_tasks(kernels: &[Kernel]) -> Vec<Tid> {
    let mut v: Vec<Tid> = kernels.iter().flat_map(|k| k.blocked_tasks()).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_report_cleanliness() {
        let clean = RunReport {
            os: "x",
            finished_at: SimTime::ZERO,
            exited_tasks: 1,
            stuck_tasks: vec![],
            events: 10,
            stop: StopCondition::QueueEmpty,
            metrics: BTreeMap::new(),
        };
        assert!(clean.is_clean());
        let mut stuck = clean.clone();
        stuck.stuck_tasks.push(Tid(3));
        assert!(!stuck.is_clean());
        let mut truncated = clean.clone();
        truncated.stop = StopCondition::HorizonReached;
        assert!(!truncated.is_clean());
    }

    #[test]
    fn clustering_kernel_counts_follow_topology() {
        let t = Topology::with_ccx(4, 8, 8); // 256 cores
        assert_eq!(KernelClustering::PerCore.kernel_count(t), 256);
        assert_eq!(KernelClustering::PerCcx.kernel_count(t), 32);
        assert_eq!(KernelClustering::PerSocket.kernel_count(t), 4);
        // Without an explicit CCX layer, per-CCX degenerates to per-socket.
        let flat = Topology::new(2, 4);
        assert_eq!(KernelClustering::PerCcx.kernel_count(flat), 2);
        assert_eq!(KernelClustering::PerSocket.kernel_count(flat), 2);
    }

    #[test]
    fn metric_lookup_defaults_to_zero() {
        let mut r = RunReport {
            os: "x",
            finished_at: SimTime::ZERO,
            exited_tasks: 0,
            stuck_tasks: vec![],
            events: 0,
            stop: StopCondition::QueueEmpty,
            metrics: BTreeMap::new(),
        };
        r.metrics.insert("faults".into(), 4.0);
        assert_eq!(r.metric("faults"), 4.0);
        assert_eq!(r.metric("absent"), 0.0);
    }
}
