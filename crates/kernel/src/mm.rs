//! Address spaces: VMAs, page-protocol state, and page contents.
//!
//! Each kernel instance hosting threads of a distributed group holds an
//! [`Mm`] *replica*: the VMA layout (kept consistent by the protocol layer
//! in `popcorn-core`) plus whatever pages this kernel currently has copies
//! of. Page entries carry the single-writer/multiple-reader state the
//! consistency protocol manipulates:
//!
//! - absent — this kernel has no copy; any access faults;
//! - [`PageState::ReadShared`] — a read-only replica; writes fault
//!   (ownership upgrade);
//! - [`PageState::Exclusive`] — the sole writable copy.
//!
//! Word contents are stored sparsely so that page transfers can actually
//! carry data — letting the test suite verify *memory values*, not just
//! protocol bookkeeping, survive migration.

use std::collections::{BTreeMap, HashMap};

use crate::types::{Errno, GroupId, PageNo, VAddr};

/// Base of the heap (`brk`) region.
pub const BRK_BASE: u64 = 0x0000_1000_0000;
/// Base of the mmap region (grows upward).
pub const MMAP_BASE: u64 = 0x7f00_0000_0000;
/// Exclusive upper bound of the mmap region.
pub const MMAP_LIMIT: u64 = 0x7fff_0000_0000;

/// Protocol state of a locally present page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageState {
    /// Read-only replica; other kernels may hold replicas too.
    ReadShared,
    /// The single writable copy in the group.
    Exclusive,
}

/// Local bookkeeping for one present page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Protocol state.
    pub state: PageState,
    /// Version (incremented by the owner on each writable grant); used by
    /// the consistency protocol's sanity checks.
    pub version: u64,
}

/// Contents extracted from an evicted/transferred page.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageContents {
    /// Version at extraction.
    pub version: u64,
    /// Non-zero words within the page, as `(address, value)`.
    pub words: Vec<(u64, u64)>,
}

/// One mapped region (anonymous memory; the only kind the workloads need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First address.
    pub start: VAddr,
    /// Length in bytes (page multiple).
    pub len: u64,
}

impl Vma {
    /// Whether the region contains `addr`.
    pub fn contains(&self, addr: VAddr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.len
    }

    /// Pages spanned by the region.
    pub fn pages(&self) -> impl Iterator<Item = PageNo> {
        let first = self.start.0 >> 12;
        let last = (self.start.0 + self.len - 1) >> 12;
        (first..=last).map(PageNo)
    }
}

/// Outcome of checking whether a memory access may proceed locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessCheck {
    /// Permitted at the current page state.
    Ok,
    /// The page is absent or held at insufficient rights; the OS model must
    /// run its fault path.
    NeedPage {
        /// The faulting page.
        page: PageNo,
        /// Whether write rights are required.
        write: bool,
    },
    /// No VMA covers the address: a segmentation fault.
    NoVma,
}

/// An address-space replica.
///
/// # Example
///
/// ```
/// use popcorn_kernel::mm::{Mm, AccessCheck, PageState};
/// use popcorn_kernel::types::{GroupId, Tid, VAddr};
/// use popcorn_msg::KernelId;
///
/// let mut mm = Mm::new(GroupId(Tid::new(KernelId(0), 1)));
/// let addr = mm.map_anon(8192).unwrap();
/// // Freshly mapped: first access faults (demand paging).
/// assert!(matches!(mm.check_access(addr, false), AccessCheck::NeedPage { .. }));
/// mm.install_zero_page(addr.page(), PageState::Exclusive);
/// assert_eq!(mm.check_access(addr, true), AccessCheck::Ok);
/// mm.write_word(addr, 42);
/// assert_eq!(mm.read_word(addr), 42);
/// ```
#[derive(Debug, Clone)]
pub struct Mm {
    group: GroupId,
    vmas: BTreeMap<u64, Vma>,
    pages: HashMap<PageNo, PageInfo>,
    words: HashMap<u64, u64>,
    next_map: u64,
    brk: u64,
}

impl Mm {
    /// Creates an empty address space for `group`.
    pub fn new(group: GroupId) -> Self {
        Mm {
            group,
            vmas: BTreeMap::new(),
            pages: HashMap::new(),
            words: HashMap::new(),
            next_map: MMAP_BASE,
            brk: BRK_BASE,
        }
    }

    /// The owning thread group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Creates a replica with the same VMA layout (and allocation cursors)
    /// but no resident pages — how a remote kernel joins a distributed
    /// address space before demand-fetching pages.
    pub fn replica_layout(&self) -> Mm {
        Mm {
            group: self.group,
            vmas: self.vmas.clone(),
            pages: HashMap::new(),
            words: HashMap::new(),
            next_map: self.next_map,
            brk: self.brk,
        }
    }

    /// The VMA covering `addr`, if any.
    pub fn vma_covering(&self, addr: VAddr) -> Option<&Vma> {
        self.vmas
            .range(..=addr.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(addr))
    }

    /// Number of VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Number of locally resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterates resident pages in deterministic (page-number) order.
    pub fn pages_sorted(&self) -> Vec<(PageNo, PageInfo)> {
        let mut v: Vec<_> = self.pages.iter().map(|(&p, &i)| (p, i)).collect();
        v.sort_unstable_by_key(|&(p, _)| p);
        v
    }

    /// Maps `len` bytes (rounded up to pages) of anonymous memory.
    ///
    /// # Errors
    ///
    /// `Errno::Inval` for a zero length; `Errno::NoMem` if the mmap region
    /// is exhausted.
    pub fn map_anon(&mut self, len: u64) -> Result<VAddr, Errno> {
        if len == 0 {
            return Err(Errno::Inval);
        }
        let len = len.div_ceil(VAddr::PAGE_SIZE) * VAddr::PAGE_SIZE;
        if self.next_map + len > MMAP_LIMIT {
            return Err(Errno::NoMem);
        }
        let start = VAddr(self.next_map);
        self.next_map += len;
        self.vmas.insert(start.0, Vma { start, len });
        Ok(start)
    }

    /// Records a mapping decided elsewhere (VMA replication from the home
    /// kernel). Also advances the local allocation cursor past it so later
    /// local `map_anon` calls cannot collide.
    pub fn install_vma(&mut self, vma: Vma) {
        self.next_map = self.next_map.max(vma.start.0 + vma.len);
        self.vmas.insert(vma.start.0, vma);
    }

    /// Unmaps a range; it must exactly cover one or more whole VMAs (which
    /// is how the workloads use it). Returns the resident pages dropped —
    /// the set the OS model must TLB-shoot-down / remotely invalidate.
    ///
    /// # Errors
    ///
    /// `Errno::Inval` if the range does not exactly cover whole VMAs.
    pub fn unmap(&mut self, addr: VAddr, len: u64) -> Result<Vec<PageNo>, Errno> {
        if len == 0 || addr.page_offset() != 0 {
            return Err(Errno::Inval);
        }
        let end = addr.0 + len;
        // Collect VMAs wholly inside [addr, end); reject partial overlap.
        let mut covered = Vec::new();
        let mut cursor = addr.0;
        for (&start, vma) in self.vmas.range(addr.0..end) {
            if start != cursor || start + vma.len > end {
                return Err(Errno::Inval);
            }
            covered.push(start);
            cursor = start + vma.len;
        }
        if cursor != end || covered.is_empty() {
            return Err(Errno::Inval);
        }
        let mut dropped = Vec::new();
        for start in covered {
            let vma = self.vmas.remove(&start).expect("collected above");
            for page in vma.pages() {
                if self.pages.remove(&page).is_some() {
                    dropped.push(page);
                }
                let base = page.base().0;
                self.words
                    .retain(|&a, _| !(base..base + VAddr::PAGE_SIZE).contains(&a));
            }
        }
        Ok(dropped)
    }

    /// Removes a VMA by exact range without touching allocation cursors —
    /// the replica-side application of a remote unmap decision. Returns
    /// dropped resident pages.
    pub fn remove_vma(&mut self, start: VAddr, len: u64) -> Vec<PageNo> {
        // A replica may not have the VMA yet: treat as a no-op.
        self.unmap(start, len).unwrap_or_default()
    }

    /// Grows the heap by `grow` bytes, returning the old break.
    pub fn brk_grow(&mut self, grow: u64) -> VAddr {
        let old = self.brk;
        let new = old + grow.div_ceil(VAddr::PAGE_SIZE) * VAddr::PAGE_SIZE;
        self.brk = new;
        // The heap is one implicit VMA [BRK_BASE, brk).
        if new > BRK_BASE {
            self.vmas.insert(
                BRK_BASE,
                Vma {
                    start: VAddr(BRK_BASE),
                    len: new - BRK_BASE,
                },
            );
        }
        VAddr(old)
    }

    /// Current heap break.
    pub fn brk(&self) -> VAddr {
        VAddr(self.brk)
    }

    /// Checks whether an access may proceed at current local rights.
    pub fn check_access(&self, addr: VAddr, write: bool) -> AccessCheck {
        if self.vma_covering(addr).is_none() {
            return AccessCheck::NoVma;
        }
        let page = addr.page();
        match self.pages.get(&page) {
            Some(info) => {
                if write && info.state == PageState::ReadShared {
                    AccessCheck::NeedPage { page, write: true }
                } else {
                    AccessCheck::Ok
                }
            }
            None => AccessCheck::NeedPage { page, write },
        }
    }

    /// Local protocol state of a page, if resident.
    pub fn page_info(&self, page: PageNo) -> Option<PageInfo> {
        self.pages.get(&page).copied()
    }

    /// Installs a fresh zero-filled page (demand paging of anonymous
    /// memory) at the given state, version 0.
    pub fn install_zero_page(&mut self, page: PageNo, state: PageState) {
        self.pages.insert(page, PageInfo { state, version: 0 });
    }

    /// Installs a page received from another kernel, with its contents.
    pub fn install_page(&mut self, page: PageNo, state: PageState, contents: PageContents) {
        self.pages.insert(
            page,
            PageInfo {
                state,
                version: contents.version,
            },
        );
        let base = page.base().0;
        self.words
            .retain(|&a, _| !(base..base + VAddr::PAGE_SIZE).contains(&a));
        for (a, v) in contents.words {
            debug_assert_eq!(VAddr(a).page(), page, "word outside page");
            self.words.insert(a, v);
        }
    }

    /// Downgrades or upgrades a resident page's state in place.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn set_page_state(&mut self, page: PageNo, state: PageState) {
        self.pages
            .get_mut(&page)
            .unwrap_or_else(|| panic!("{page} not resident"))
            .state = state;
    }

    /// Increments a resident page's version (owner-side, on write grant).
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn bump_page_version(&mut self, page: PageNo) -> u64 {
        let info = self
            .pages
            .get_mut(&page)
            .unwrap_or_else(|| panic!("{page} not resident"));
        info.version += 1;
        info.version
    }

    /// Extracts a snapshot of a resident page's contents (for transfer)
    /// without changing local state.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn snapshot_page(&self, page: PageNo) -> PageContents {
        let info = self
            .pages
            .get(&page)
            .unwrap_or_else(|| panic!("{page} not resident"));
        let base = page.base().0;
        let mut words: Vec<(u64, u64)> = self
            .words
            .iter()
            .filter(|&(&a, _)| (base..base + VAddr::PAGE_SIZE).contains(&a))
            .map(|(&a, &v)| (a, v))
            .collect();
        words.sort_unstable();
        PageContents {
            version: info.version,
            words,
        }
    }

    /// Drops a resident page (invalidation), returning its contents.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn evict_page(&mut self, page: PageNo) -> PageContents {
        let contents = self.snapshot_page(page);
        self.pages.remove(&page);
        let base = page.base().0;
        self.words
            .retain(|&a, _| !(base..base + VAddr::PAGE_SIZE).contains(&a));
        contents
    }

    /// Applies a consistency-protocol grant: installs the page with the
    /// granted state/version, using `contents` when data was shipped. A
    /// `None`-contents grant on a resident page is an in-place ownership
    /// upgrade; on an absent page it is a zero-fill.
    pub fn apply_grant(
        &mut self,
        page: PageNo,
        state: PageState,
        version: u64,
        contents: Option<PageContents>,
    ) {
        match contents {
            Some(mut c) => {
                c.version = version;
                self.install_page(page, state, c);
            }
            None => {
                if let Some(info) = self.pages.get_mut(&page) {
                    info.state = state;
                    info.version = version;
                } else {
                    self.pages.insert(page, PageInfo { state, version });
                }
            }
        }
    }

    /// All VMAs in address order.
    pub fn vmas(&self) -> Vec<Vma> {
        self.vmas.values().copied().collect()
    }

    /// Reads a word (0 for never-written addresses — zero-fill semantics).
    /// The caller must have established access rights first.
    pub fn read_word(&self, addr: VAddr) -> u64 {
        self.words.get(&addr.0).copied().unwrap_or(0)
    }

    /// Writes a word. The caller must have established write rights first.
    pub fn write_word(&mut self, addr: VAddr, value: u64) {
        if value == 0 {
            self.words.remove(&addr.0);
        } else {
            self.words.insert(addr.0, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Tid;
    use popcorn_msg::KernelId;

    fn mm() -> Mm {
        Mm::new(GroupId(Tid::new(KernelId(0), 1)))
    }

    #[test]
    fn map_anon_rounds_to_pages_and_is_disjoint() {
        let mut m = mm();
        let a = m.map_anon(1).unwrap();
        let b = m.map_anon(4097).unwrap();
        assert_eq!(b.0 - a.0, 4096);
        let c = m.map_anon(100).unwrap();
        assert_eq!(c.0 - b.0, 8192);
        assert_eq!(m.vma_count(), 3);
    }

    #[test]
    fn map_anon_zero_rejected() {
        assert_eq!(mm().map_anon(0), Err(Errno::Inval));
    }

    #[test]
    fn vma_covering_finds_region() {
        let mut m = mm();
        let a = m.map_anon(8192).unwrap();
        assert!(m.vma_covering(a).is_some());
        assert!(m.vma_covering(a.add(8191)).is_some());
        assert!(m.vma_covering(a.add(8192)).is_none());
        assert!(m.vma_covering(VAddr(0x1000)).is_none());
    }

    #[test]
    fn fresh_mapping_faults_then_resolves() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        match m.check_access(a, false) {
            AccessCheck::NeedPage { page, write } => {
                assert_eq!(page, a.page());
                assert!(!write);
            }
            other => panic!("expected fault, got {other:?}"),
        }
        m.install_zero_page(a.page(), PageState::Exclusive);
        assert_eq!(m.check_access(a, true), AccessCheck::Ok);
    }

    #[test]
    fn read_shared_page_faults_on_write_only() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        m.install_zero_page(a.page(), PageState::ReadShared);
        assert_eq!(m.check_access(a, false), AccessCheck::Ok);
        assert_eq!(
            m.check_access(a, true),
            AccessCheck::NeedPage {
                page: a.page(),
                write: true
            }
        );
    }

    #[test]
    fn unmapped_address_is_no_vma() {
        let m = mm();
        assert_eq!(m.check_access(VAddr(0xdead_0000), true), AccessCheck::NoVma);
    }

    #[test]
    fn words_default_to_zero_and_roundtrip() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        m.install_zero_page(a.page(), PageState::Exclusive);
        assert_eq!(m.read_word(a), 0);
        m.write_word(a, 99);
        assert_eq!(m.read_word(a), 99);
        m.write_word(a, 0);
        assert_eq!(m.read_word(a), 0);
    }

    #[test]
    fn unmap_exact_range_drops_pages() {
        let mut m = mm();
        let a = m.map_anon(8192).unwrap();
        m.install_zero_page(a.page(), PageState::Exclusive);
        m.write_word(a, 5);
        let dropped = m.unmap(a, 8192).unwrap();
        assert_eq!(dropped, vec![a.page()]);
        assert_eq!(m.vma_count(), 0);
        assert_eq!(m.check_access(a, false), AccessCheck::NoVma);
    }

    #[test]
    fn unmap_two_adjacent_vmas_at_once() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        let _b = m.map_anon(4096).unwrap();
        assert!(m.unmap(a, 8192).is_ok());
        assert_eq!(m.vma_count(), 0);
    }

    #[test]
    fn unmap_partial_vma_rejected() {
        let mut m = mm();
        let a = m.map_anon(8192).unwrap();
        assert_eq!(m.unmap(a, 4096), Err(Errno::Inval));
        assert_eq!(m.unmap(a.add(1), 8192), Err(Errno::Inval));
        assert_eq!(m.unmap(a, 0), Err(Errno::Inval));
    }

    #[test]
    fn unmap_hole_rejected() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        let b = m.map_anon(4096).unwrap();
        m.unmap(a, 4096).unwrap();
        // Range covering the hole plus b is invalid.
        assert_eq!(m.unmap(a, 8192), Err(Errno::Inval));
        // b alone is fine.
        assert!(m.unmap(b, 4096).is_ok());
    }

    #[test]
    fn brk_grows_heap_vma() {
        let mut m = mm();
        let old = m.brk_grow(100);
        assert_eq!(old.0, BRK_BASE);
        assert_eq!(m.brk().0, BRK_BASE + 4096);
        assert!(m.vma_covering(VAddr(BRK_BASE)).is_some());
        m.brk_grow(4096);
        assert_eq!(m.brk().0, BRK_BASE + 8192);
        assert!(m.vma_covering(VAddr(BRK_BASE + 5000)).is_some());
    }

    #[test]
    fn replica_layout_copies_vmas_not_pages() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        m.install_zero_page(a.page(), PageState::Exclusive);
        m.write_word(a, 7);
        let r = m.replica_layout();
        assert_eq!(r.vma_count(), 1);
        assert_eq!(r.resident_pages(), 0);
        assert!(matches!(
            r.check_access(a, false),
            AccessCheck::NeedPage { .. }
        ));
    }

    #[test]
    fn replica_allocation_cursor_does_not_collide() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        let mut r = m.replica_layout();
        let b = r.map_anon(4096).unwrap();
        assert_ne!(a.page(), b.page());
        assert!(b.0 >= a.0 + 4096);
    }

    #[test]
    fn install_vma_advances_cursor() {
        let mut m = mm();
        let remote = Vma {
            start: VAddr(MMAP_BASE + 16 * 4096),
            len: 4096,
        };
        m.install_vma(remote);
        let local = m.map_anon(4096).unwrap();
        assert!(local.0 >= MMAP_BASE + 17 * 4096);
    }

    #[test]
    fn page_transfer_preserves_contents() {
        let mut src = mm();
        let a = src.map_anon(4096).unwrap();
        src.install_zero_page(a.page(), PageState::Exclusive);
        src.write_word(a, 11);
        src.write_word(a.add(8), 22);
        src.bump_page_version(a.page());
        let contents = src.evict_page(a.page());
        assert_eq!(src.resident_pages(), 0);

        let mut dst = src.replica_layout();
        dst.install_page(a.page(), PageState::Exclusive, contents);
        assert_eq!(dst.read_word(a), 11);
        assert_eq!(dst.read_word(a.add(8)), 22);
        assert_eq!(dst.page_info(a.page()).unwrap().version, 1);
    }

    #[test]
    fn snapshot_does_not_evict() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        m.install_zero_page(a.page(), PageState::Exclusive);
        m.write_word(a, 3);
        let snap = m.snapshot_page(a.page());
        assert_eq!(snap.words, vec![(a.0, 3)]);
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.read_word(a), 3);
    }

    #[test]
    fn set_state_and_version_bump() {
        let mut m = mm();
        let a = m.map_anon(4096).unwrap();
        m.install_zero_page(a.page(), PageState::Exclusive);
        m.set_page_state(a.page(), PageState::ReadShared);
        assert_eq!(m.page_info(a.page()).unwrap().state, PageState::ReadShared);
        assert_eq!(m.bump_page_version(a.page()), 1);
        assert_eq!(m.bump_page_version(a.page()), 2);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn evicting_absent_page_panics() {
        let mut m = mm();
        m.evict_page(PageNo(0x7f000));
    }

    #[test]
    fn pages_sorted_is_deterministic() {
        let mut m = mm();
        let a = m.map_anon(3 * 4096).unwrap();
        for i in [2u64, 0, 1] {
            m.install_zero_page(PageNo(a.page().0 + i), PageState::ReadShared);
        }
        let ps: Vec<u64> = m.pages_sorted().iter().map(|&(p, _)| p.0).collect();
        assert_eq!(ps, vec![a.page().0, a.page().0 + 1, a.page().0 + 2]);
    }
}
