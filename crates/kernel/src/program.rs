//! The user-program abstraction.
//!
//! Applications in this reproduction are resumable state machines: the
//! kernel repeatedly calls [`Program::step`], feeding back the result of the
//! previous operation, and the program returns its next [`Op`] — compute for
//! some cycles, touch memory, perform an atomic read-modify-write on a
//! synchronization word, or make a syscall. This mirrors how the simulation
//! views a real thread: a stream of instructions punctuated by the events
//! the OS must mediate.
//!
//! Because a program is a value (`Box<dyn Program>`), *migrating a thread
//! moves the value between kernel instances* — together with its
//! [`CpuContext`](crate::types::CpuContext) — which is exactly the paper's
//! context-migration operation.

use std::fmt;

use popcorn_hw::CoreId;
use popcorn_msg::KernelId;
use popcorn_sim::SimTime;

use crate::types::{Errno, Tid, VAddr};

/// What the kernel feeds back into [`Program::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// First step of a fresh thread.
    Start,
    /// The previous op (compute/store) completed.
    Done,
    /// The previous load or atomic op completed with this value.
    Value(u64),
    /// The previous syscall returned.
    Sys(SysResult),
}

/// Result of a syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysResult {
    /// Success carrying a value (address for mmap, tid for clone/gettid,
    /// woken count for futex-wake, 0 where nothing meaningful).
    Val(u64),
    /// Failure.
    Err(Errno),
}

impl SysResult {
    /// Unwraps the success value.
    ///
    /// # Panics
    ///
    /// Panics on `Err` — programs use this where failure indicates a
    /// workload bug.
    pub fn expect_val(self, what: &str) -> u64 {
        match self {
            SysResult::Val(v) => v,
            SysResult::Err(e) => panic!("syscall {what} failed: {e}"),
        }
    }
}

/// Atomic read-modify-write operations on synchronization words.
///
/// These are routed through the OS model's synchronization-word engine (the
/// futex value store); see DESIGN.md §Distributed futex for the modelling
/// rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// Fetch-and-add; returns the old value.
    Add(u64),
    /// Unconditional exchange; returns the old value.
    Xchg(u64),
    /// Compare-and-swap: store `new` if current == `expected`; returns the
    /// old value (caller compares to detect success).
    Cas {
        /// Value the word must currently hold.
        expected: u64,
        /// Replacement on success.
        new: u64,
    },
}

/// Futex operations (the `futex(2)` subset the paper's workloads use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FutexOp {
    /// Sleep while `*uaddr == expected` (returns `Err(Again)` otherwise).
    Wait {
        /// Futex word address.
        uaddr: VAddr,
        /// Expected value gate.
        expected: u64,
    },
    /// Wake up to `count` waiters; returns how many were woken.
    Wake {
        /// Futex word address.
        uaddr: VAddr,
        /// Maximum waiters to wake (`u32::MAX` = all).
        count: u32,
    },
}

/// Where a newly cloned thread should be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Least-loaded core of the calling kernel.
    Local,
    /// A specific core (the OS model maps it to the owning kernel; on the
    /// replicated-kernel OS a remote core implies remote thread creation).
    Core(CoreId),
    /// Spread across the whole machine (OS model's default placement).
    Auto,
}

/// Where a thread asks to migrate (Popcorn exposes migration through a
/// processor-affinity-style interface; on SMP the same call is an
/// intra-kernel core move).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateTarget {
    /// Move to (some core of) the given kernel instance.
    Kernel(KernelId),
    /// Move to a specific core.
    Core(CoreId),
}

/// A syscall request from a program.
#[derive(Debug)]
pub enum SyscallReq {
    /// Create a thread in the caller's (distributed) thread group running
    /// `child`. Returns the new tid.
    Clone {
        /// The child thread's program.
        child: Box<dyn Program>,
        /// Placement hint.
        placement: Placement,
    },
    /// Terminate the whole thread group.
    ExitGroup {
        /// Exit status.
        code: i32,
    },
    /// Map `len` bytes of anonymous memory; returns the address.
    Mmap {
        /// Length in bytes (rounded up to pages).
        len: u64,
    },
    /// Unmap a range previously returned by mmap.
    Munmap {
        /// Start address (page aligned).
        addr: VAddr,
        /// Length in bytes.
        len: u64,
    },
    /// Grow the heap by `grow` bytes; returns the old break.
    Brk {
        /// Bytes to extend by.
        grow: u64,
    },
    /// Futex wait/wake.
    Futex(FutexOp),
    /// The group pid (identical on every kernel — single-system image).
    GetPid,
    /// The caller's tid.
    GetTid,
    /// Request migration of the calling thread.
    Migrate(MigrateTarget),
    /// Yield the CPU to the next runnable thread on this core.
    Yield,
    /// Sleep for at least `ns` virtual nanoseconds.
    Nanosleep {
        /// Sleep duration in nanoseconds.
        ns: u64,
    },
    /// Which kernel instance the thread is currently executing on. (A
    /// Popcorn-specific introspection call; SMP returns kernel 0.)
    GetKernel,
}

/// One operation a program asks the machine to perform.
#[derive(Debug)]
pub enum Op {
    /// Execute for this many CPU cycles.
    Compute(u64),
    /// Read a 64-bit word (feeds back [`Resume::Value`]).
    Load(VAddr),
    /// Write a 64-bit word.
    Store(VAddr, u64),
    /// Atomic RMW on a synchronization word (feeds back the old value).
    AtomicRmw(VAddr, RmwOp),
    /// Enter the kernel.
    Syscall(SyscallReq),
    /// Terminate this thread with a status code.
    Exit(i32),
}

/// Read-only execution environment handed to [`Program::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgEnv {
    /// The calling thread's id.
    pub tid: Tid,
    /// Core currently executing the thread.
    pub core: CoreId,
    /// Kernel instance currently hosting the thread.
    pub kernel: KernelId,
    /// Current virtual time.
    pub now: SimTime,
}

/// A user thread as a resumable state machine.
///
/// Implementations must be deterministic given the `Resume` sequence; they
/// may carry arbitrary state (it migrates with the thread).
///
/// # Example
///
/// ```
/// use popcorn_kernel::program::{Program, Op, Resume, ProgEnv};
///
/// /// Spin for `n` chunks of 1000 cycles, then exit 0.
/// #[derive(Debug)]
/// struct Spin { n: u32 }
///
/// impl Program for Spin {
///     fn step(&mut self, _resume: Resume, _env: &ProgEnv) -> Op {
///         if self.n == 0 {
///             return Op::Exit(0);
///         }
///         self.n -= 1;
///         Op::Compute(1000)
///     }
/// }
/// ```
pub trait Program: fmt::Debug + Send {
    /// Produces the next operation given the previous one's result.
    fn step(&mut self, resume: Resume, env: &ProgEnv) -> Op;

    /// Extra bytes this program's state adds to a migration message beyond
    /// the architectural context (models dirty-stack transfer; defaults to
    /// one page worth of live stack).
    fn migration_payload(&self) -> usize {
        4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Spin {
        n: u32,
    }

    impl Program for Spin {
        fn step(&mut self, _resume: Resume, _env: &ProgEnv) -> Op {
            if self.n == 0 {
                return Op::Exit(7);
            }
            self.n -= 1;
            Op::Compute(100)
        }
    }

    fn env() -> ProgEnv {
        ProgEnv {
            tid: Tid::new(KernelId(0), 1),
            core: CoreId(0),
            kernel: KernelId(0),
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn program_state_machine_drives_to_exit() {
        let mut p = Spin { n: 2 };
        let e = env();
        assert!(matches!(p.step(Resume::Start, &e), Op::Compute(100)));
        assert!(matches!(p.step(Resume::Done, &e), Op::Compute(100)));
        assert!(matches!(p.step(Resume::Done, &e), Op::Exit(7)));
    }

    #[test]
    fn default_migration_payload_is_one_page() {
        assert_eq!(Spin { n: 0 }.migration_payload(), 4096);
    }

    #[test]
    fn sys_result_expect_val() {
        assert_eq!(SysResult::Val(5).expect_val("x"), 5);
    }

    #[test]
    #[should_panic(expected = "syscall mmap failed")]
    fn sys_result_expect_val_panics_on_err() {
        SysResult::Err(Errno::NoMem).expect_val("mmap");
    }

    #[test]
    fn boxed_programs_are_objects() {
        let boxed: Box<dyn Program> = Box::new(Spin { n: 1 });
        assert!(format!("{boxed:?}").contains("Spin"));
    }
}
