//! Synchronization words and futex wait queues.
//!
//! User-level synchronization in the workloads (mutexes, barriers) is built
//! on words manipulated with atomic RMW ops plus `futex` wait/wake. In this
//! reproduction the word values and wait queues live in a [`FutexTable`]
//! owned by whichever kernel is *authoritative* for the group:
//!
//! - on the SMP baseline, the single kernel;
//! - on the replicated-kernel OS, the group's **home kernel** (the paper's
//!   global futex server) — remote kernels reach it by RPC, local threads
//!   take the fast path.
//!
//! Serializing value checks and queue operations at one place makes
//! lost-wakeup races impossible by construction, which mirrors how both
//! Linux (per-bucket locks) and Popcorn (home-kernel server) close them.
//! See DESIGN.md §Distributed futex for the modelling rationale.

use std::collections::{HashMap, VecDeque};

use popcorn_msg::KernelId;

use crate::program::RmwOp;
use crate::types::{GroupId, Tid, VAddr};

/// A parked futex waiter (possibly on a remote kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// Kernel hosting the sleeping thread.
    pub kernel: KernelId,
    /// The sleeping thread.
    pub tid: Tid,
}

/// Authoritative synchronization-word values and futex wait queues for the
/// groups homed on one kernel.
///
/// # Example
///
/// ```
/// use popcorn_kernel::futex::{FutexTable, Waiter};
/// use popcorn_kernel::program::RmwOp;
/// use popcorn_kernel::types::{GroupId, Tid, VAddr};
/// use popcorn_msg::KernelId;
///
/// let mut t = FutexTable::new();
/// let g = GroupId(Tid::new(KernelId(0), 1));
/// let w = VAddr(0x7f00_0000_0000);
///
/// assert_eq!(t.rmw(g, w, RmwOp::Add(1)), 0); // old value
/// assert_eq!(t.read(g, w), 1);
///
/// let sleeper = Waiter { kernel: KernelId(0), tid: Tid::new(KernelId(0), 2) };
/// assert!(t.wait_if(g, w, 1, sleeper));      // 1 == current: parked
/// assert_eq!(t.wake(g, w, u32::MAX), vec![sleeper]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FutexTable {
    words: HashMap<(GroupId, u64), u64>,
    queues: HashMap<(GroupId, u64), VecDeque<Waiter>>,
}

impl FutexTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FutexTable::default()
    }

    /// True when no word has ever been written and no waiter is parked.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.queues.is_empty()
    }

    /// Merges another table into this one (reassembling a machine from
    /// simulation partitions). Words and queues are keyed by (group, addr)
    /// and each group is served by exactly one kernel, so the key sets must
    /// be disjoint — a collision means two partitions both served the same
    /// word and the run is invalid.
    pub fn absorb(&mut self, other: FutexTable) {
        for (k, v) in other.words {
            let clash = self.words.insert(k, v);
            assert!(clash.is_none(), "futex word {k:?} served by two partitions");
        }
        for (k, q) in other.queues {
            let clash = self.queues.insert(k, q);
            assert!(
                clash.is_none(),
                "futex queue {k:?} served by two partitions"
            );
        }
    }

    /// Reads a word (0 if never written).
    pub fn read(&self, group: GroupId, addr: VAddr) -> u64 {
        self.words.get(&(group, addr.0)).copied().unwrap_or(0)
    }

    /// Applies an atomic RMW, returning the *old* value.
    pub fn rmw(&mut self, group: GroupId, addr: VAddr, op: RmwOp) -> u64 {
        let slot = self.words.entry((group, addr.0)).or_insert(0);
        let old = *slot;
        match op {
            RmwOp::Add(n) => *slot = old.wrapping_add(n),
            RmwOp::Xchg(n) => *slot = n,
            RmwOp::Cas { expected, new } => {
                if old == expected {
                    *slot = new;
                }
            }
        }
        old
    }

    /// Parks `waiter` if the word still holds `expected`; returns whether it
    /// was parked (`false` = value changed, caller returns `EAGAIN`).
    pub fn wait_if(&mut self, group: GroupId, addr: VAddr, expected: u64, waiter: Waiter) -> bool {
        if self.read(group, addr) != expected {
            return false;
        }
        self.queues
            .entry((group, addr.0))
            .or_default()
            .push_back(waiter);
        true
    }

    /// Wakes up to `count` waiters in FIFO order; returns them.
    pub fn wake(&mut self, group: GroupId, addr: VAddr, count: u32) -> Vec<Waiter> {
        let Some(q) = self.queues.get_mut(&(group, addr.0)) else {
            return Vec::new();
        };
        let n = (count as usize).min(q.len());
        let woken: Vec<Waiter> = q.drain(..n).collect();
        if q.is_empty() {
            self.queues.remove(&(group, addr.0));
        }
        woken
    }

    /// Number of waiters parked on a word.
    pub fn waiters(&self, group: GroupId, addr: VAddr) -> usize {
        self.queues.get(&(group, addr.0)).map_or(0, VecDeque::len)
    }

    /// Number of parked waiters (across all words) resident on `kernel` —
    /// the futex-wait residency signal in the load-telemetry snapshot.
    pub fn resident_waiters(&self, kernel: KernelId) -> usize {
        self.queues
            .values()
            .flat_map(|q| q.iter())
            .filter(|w| w.kernel == kernel)
            .count()
    }

    /// Removes every wait queue of `group` but keeps its word values
    /// (crash recovery: a member kernel died and the authoritative table is
    /// being swept). Returns the parked waiters sorted by tid so the caller
    /// can wake survivors with an `EOWNERDEAD`-style error and skip waiters
    /// that were resident on the dead kernel. Words survive because the
    /// group lives on — its mutexes and barriers keep their state.
    pub fn sweep_group(&mut self, group: GroupId) -> Vec<Waiter> {
        let mut orphans = Vec::new();
        self.queues.retain(|&(g, _), q| {
            if g == group {
                orphans.extend(q.iter().copied());
                false
            } else {
                true
            }
        });
        orphans.sort_unstable_by_key(|w| w.tid);
        orphans
    }

    /// Drops all state of a group (group exit); returns any still-parked
    /// waiters so the caller can fail them.
    pub fn drop_group(&mut self, group: GroupId) -> Vec<Waiter> {
        self.words.retain(|&(g, _), _| g != group);
        let mut orphans = Vec::new();
        self.queues.retain(|&(g, _), q| {
            if g == group {
                orphans.extend(q.iter().copied());
                false
            } else {
                true
            }
        });
        orphans.sort_unstable_by_key(|w| w.tid);
        orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> GroupId {
        GroupId(Tid::new(KernelId(0), 1))
    }

    fn w(n: u32) -> Waiter {
        Waiter {
            kernel: KernelId(0),
            tid: Tid::new(KernelId(0), n),
        }
    }

    const A: VAddr = VAddr(0x7000);

    #[test]
    fn words_default_zero() {
        assert_eq!(FutexTable::new().read(g(), A), 0);
    }

    #[test]
    fn rmw_add_returns_old() {
        let mut t = FutexTable::new();
        assert_eq!(t.rmw(g(), A, RmwOp::Add(5)), 0);
        assert_eq!(t.rmw(g(), A, RmwOp::Add(3)), 5);
        assert_eq!(t.read(g(), A), 8);
    }

    #[test]
    fn rmw_add_wraps() {
        let mut t = FutexTable::new();
        t.rmw(g(), A, RmwOp::Xchg(u64::MAX));
        assert_eq!(t.rmw(g(), A, RmwOp::Add(2)), u64::MAX);
        assert_eq!(t.read(g(), A), 1);
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let mut t = FutexTable::new();
        assert_eq!(
            t.rmw(
                g(),
                A,
                RmwOp::Cas {
                    expected: 0,
                    new: 1
                }
            ),
            0
        );
        assert_eq!(t.read(g(), A), 1);
        // Mismatch: returns old, leaves value.
        assert_eq!(
            t.rmw(
                g(),
                A,
                RmwOp::Cas {
                    expected: 0,
                    new: 9
                }
            ),
            1
        );
        assert_eq!(t.read(g(), A), 1);
    }

    #[test]
    fn xchg_swaps() {
        let mut t = FutexTable::new();
        assert_eq!(t.rmw(g(), A, RmwOp::Xchg(7)), 0);
        assert_eq!(t.rmw(g(), A, RmwOp::Xchg(0)), 7);
    }

    #[test]
    fn wait_gated_on_expected_value() {
        let mut t = FutexTable::new();
        t.rmw(g(), A, RmwOp::Xchg(2));
        assert!(!t.wait_if(g(), A, 1, w(1)), "stale expected must not park");
        assert!(t.wait_if(g(), A, 2, w(1)));
        assert_eq!(t.waiters(g(), A), 1);
    }

    #[test]
    fn wake_is_fifo_and_bounded() {
        let mut t = FutexTable::new();
        for i in 1..=4 {
            assert!(t.wait_if(g(), A, 0, w(i)));
        }
        let woken = t.wake(g(), A, 2);
        assert_eq!(woken, vec![w(1), w(2)]);
        assert_eq!(t.waiters(g(), A), 2);
        let rest = t.wake(g(), A, u32::MAX);
        assert_eq!(rest, vec![w(3), w(4)]);
        assert_eq!(t.waiters(g(), A), 0);
    }

    #[test]
    fn wake_empty_is_empty() {
        let mut t = FutexTable::new();
        assert!(t.wake(g(), A, u32::MAX).is_empty());
    }

    #[test]
    fn groups_are_isolated() {
        let mut t = FutexTable::new();
        let g2 = GroupId(Tid::new(KernelId(1), 1));
        t.rmw(g(), A, RmwOp::Add(1));
        assert_eq!(t.read(g2, A), 0);
        assert!(t.wait_if(g2, A, 0, w(9)));
        assert!(t.wake(g(), A, u32::MAX).is_empty());
        assert_eq!(t.waiters(g2, A), 1);
    }

    #[test]
    fn sweep_group_keeps_words_drops_queues() {
        let mut t = FutexTable::new();
        let g2 = GroupId(Tid::new(KernelId(1), 1));
        t.rmw(g(), A, RmwOp::Xchg(7));
        assert!(t.wait_if(g(), A, 7, w(4)));
        assert!(t.wait_if(g(), VAddr(0x8000), 0, w(2)));
        assert!(t.wait_if(g2, A, 0, w(9)));
        let swept = t.sweep_group(g());
        assert_eq!(swept, vec![w(2), w(4)]); // sorted by tid
        assert_eq!(t.read(g(), A), 7, "word values survive the sweep");
        assert_eq!(t.waiters(g(), A), 0);
        assert_eq!(t.waiters(g2, A), 1, "other groups untouched");
    }

    #[test]
    fn drop_group_returns_orphans_sorted() {
        let mut t = FutexTable::new();
        t.wait_if(g(), A, 0, w(3)).then_some(()).unwrap();
        t.wait_if(g(), VAddr(0x8000), 0, w(1))
            .then_some(())
            .unwrap();
        let orphans = t.drop_group(g());
        assert_eq!(orphans, vec![w(1), w(3)]);
        assert_eq!(t.read(g(), A), 0);
        assert_eq!(t.waiters(g(), A), 0);
    }
}
