//! Kernel-wide identifier and context types.
//!
//! Popcorn gives every kernel instance a disjoint PID range so that task ids
//! are globally unique without coordination (the paper's PID-offset scheme);
//! [`Tid`] encodes that directly: the originating kernel in the high bits,
//! a kernel-local id in the low bits.

use std::fmt;

use popcorn_msg::KernelId;

/// Number of low bits reserved for the kernel-local part of a [`Tid`].
const LOCAL_BITS: u32 = 24;

/// A globally unique task (thread) identifier.
///
/// # Example
///
/// ```
/// use popcorn_kernel::types::Tid;
/// use popcorn_msg::KernelId;
///
/// let t = Tid::new(KernelId(2), 7);
/// assert_eq!(t.origin(), KernelId(2));
/// assert_eq!(t.local(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(pub u32);

impl Tid {
    /// Composes a tid from its originating kernel and a kernel-local id.
    ///
    /// # Panics
    ///
    /// Panics if `local` exceeds the 24-bit local space.
    pub fn new(origin: KernelId, local: u32) -> Self {
        assert!(local < (1 << LOCAL_BITS), "local tid {local} overflows");
        Tid(((origin.0 as u32) << LOCAL_BITS) | local)
    }

    /// The kernel that allocated this tid.
    pub fn origin(self) -> KernelId {
        KernelId((self.0 >> LOCAL_BITS) as u16)
    }

    /// The kernel-local part.
    pub fn local(self) -> u32 {
        self.0 & ((1 << LOCAL_BITS) - 1)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.origin().0, self.local())
    }
}

/// A distributed thread group identity: the group leader's tid, which is
/// also what `getpid` reports on every kernel (single-system image).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub Tid);

impl GroupId {
    /// The kernel hosting the group's home (origin of the leader).
    pub fn home(self) -> KernelId {
        self.0.origin()
    }

    /// The pid applications observe (`getpid`).
    pub fn pid(self) -> u32 {
        self.0 .0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A virtual address within a group's (shared) address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Page size used throughout the model (4 KiB, as on the paper's x86).
    pub const PAGE_SIZE: u64 = 4096;

    /// The page number containing this address.
    pub fn page(self) -> PageNo {
        PageNo(self.0 >> 12)
    }

    /// Offset within the page.
    pub fn page_offset(self) -> u64 {
        self.0 & (Self::PAGE_SIZE - 1)
    }

    /// Byte-offset addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, delta: u64) -> VAddr {
        VAddr(self.0 + delta)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A virtual page number (`address >> 12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNo(pub u64);

impl PageNo {
    /// First address of the page.
    pub fn base(self) -> VAddr {
        VAddr(self.0 << 12)
    }
}

impl fmt::Display for PageNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn{:#x}", self.0)
    }
}

/// POSIX-style error codes surfaced to programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Bad address (no VMA covers the access).
    Fault,
    /// Invalid argument.
    Inval,
    /// Try again (futex value mismatch).
    Again,
    /// No such process/task.
    Srch,
    /// Function not supported on this OS model (e.g. migration on SMP).
    NoSys,
    /// Out of memory / address space.
    NoMem,
    /// I/O error: a remote operation was given up on after the message
    /// layer exhausted its retries (or its response deadline expired).
    Io,
    /// The kernel owning the resource (futex word, page, group home) died
    /// and crash recovery completed the operation on the caller's behalf —
    /// the robust-futex `EOWNERDEAD` convention. The caller's state may be
    /// inconsistent; programs treat it as a spurious wake and revalidate.
    OwnerDead,
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Errno::Fault => "EFAULT",
            Errno::Inval => "EINVAL",
            Errno::Again => "EAGAIN",
            Errno::Srch => "ESRCH",
            Errno::NoSys => "ENOSYS",
            Errno::NoMem => "ENOMEM",
            Errno::Io => "EIO",
            Errno::OwnerDead => "EOWNERDEAD",
        };
        f.write_str(s)
    }
}

/// The architectural state that travels with a migrating thread: the
/// paper's context-migration payload (general-purpose registers, flags,
/// segment bases, and optionally the FPU/vector state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuContext {
    /// General-purpose register file (16 × 64-bit on x86-64).
    pub gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
    /// fs/gs segment bases (thread-local storage pointers).
    pub seg_bases: [u64; 2],
    /// Whether extended FPU/SSE state must be marshalled too.
    pub fpu_used: bool,
}

impl Default for CpuContext {
    fn default() -> Self {
        CpuContext {
            gpr: [0; 16],
            rip: 0x40_0000,
            rflags: 0x202,
            seg_bases: [0; 2],
            fpu_used: false,
        }
    }
}

impl CpuContext {
    /// Serialized size in bytes when marshalled into a migration message
    /// (the x86-64 integer state, plus the 512-byte FXSAVE area when the
    /// FPU was used — the quantity the paper's context-migration cost
    /// scales with).
    pub fn wire_size(&self) -> usize {
        let base = 16 * 8 + 8 + 8 + 2 * 8; // gpr + rip + rflags + seg bases
        if self.fpu_used {
            base + 512
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_roundtrips_origin_and_local() {
        for k in [0u16, 1, 7, 63] {
            for l in [0u32, 1, 12345, (1 << LOCAL_BITS) - 1] {
                let t = Tid::new(KernelId(k), l);
                assert_eq!(t.origin(), KernelId(k));
                assert_eq!(t.local(), l);
            }
        }
    }

    #[test]
    fn tids_from_different_kernels_never_collide() {
        let a = Tid::new(KernelId(0), 5);
        let b = Tid::new(KernelId(1), 5);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn local_overflow_panics() {
        Tid::new(KernelId(0), 1 << LOCAL_BITS);
    }

    #[test]
    fn group_home_is_leader_origin() {
        let g = GroupId(Tid::new(KernelId(3), 1));
        assert_eq!(g.home(), KernelId(3));
    }

    #[test]
    fn vaddr_page_math() {
        let a = VAddr(0x12345);
        assert_eq!(a.page(), PageNo(0x12));
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.page().base(), VAddr(0x12000));
        assert_eq!(a.add(0x10), VAddr(0x12355));
    }

    #[test]
    fn context_wire_size_grows_with_fpu() {
        let mut c = CpuContext::default();
        let lean = c.wire_size();
        c.fpu_used = true;
        assert_eq!(c.wire_size(), lean + 512);
    }

    #[test]
    fn display_formats_are_informative() {
        let t = Tid::new(KernelId(2), 9);
        assert_eq!(t.to_string(), "t2.9");
        assert_eq!(GroupId(t).to_string(), "gt2.9");
        assert_eq!(VAddr(0xff).to_string(), "0xff");
        assert_eq!(Errno::Again.to_string(), "EAGAIN");
    }
}
