//! Migration policy: *when* (and where) a thread should move.
//!
//! The kernel mechanism layer executes migrations ([`crate::kernel::Kernel`]
//! extracts and attaches thread state); the workloads can script them
//! (`SyscallReq::Migrate`). This module supplies the missing third piece:
//! policies that decide on their own, fed by a per-kernel load-telemetry
//! snapshot ([`KernelLoad`]) that the machine layer refreshes by
//! piggybacking on fabric traffic plus a periodic tick.
//!
//! A policy is machine-global but invoked *from* one kernel at a time
//! (`view.me`), mirroring the paper's architecture where each kernel runs
//! its own scheduler over shared (and slightly stale) load information.
//! Policies must be deterministic: decisions may depend only on the view
//! and on the policy's own state, never on ambient randomness — the
//! simulation's byte-identical-results invariant extends to them.

use std::collections::BTreeMap;

use popcorn_msg::KernelId;
use popcorn_sim::SimTime;

/// One kernel's load-telemetry snapshot, as last published.
///
/// `runq` is the instantaneous runnable load (running + queued);
/// `runq_tw` is the *time-weighted* mean runqueue depth over the published
/// series (see `TimeSeries::time_weighted_mean` — event-driven samples make
/// the point-weighted mean misleading); `fault_rate` is page faults per
/// millisecond over the window since the previous publish; `futex_waiters`
/// counts parked waiters resident on this kernel; `healthy` is false when
/// the fault plan says the kernel is crashed or its channel to/from the
/// observer is blacked out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelLoad {
    /// Which kernel this snapshot describes.
    pub kernel: KernelId,
    /// Instantaneous runnable load (running + queued threads).
    pub runq: u32,
    /// Time-weighted mean runqueue depth over the published series.
    pub runq_tw: f64,
    /// Recent page-fault rate, faults per millisecond.
    pub fault_rate: f64,
    /// Futex waiters currently parked whose home is this kernel.
    pub futex_waiters: u32,
    /// False when crashed or blacked out relative to the observer.
    pub healthy: bool,
    /// When this snapshot was published.
    pub at: SimTime,
}

impl KernelLoad {
    /// A zeroed, healthy snapshot for `kernel` (pre-first-publish state).
    pub fn empty(kernel: KernelId) -> Self {
        KernelLoad {
            kernel,
            runq: 0,
            runq_tw: 0.0,
            fault_rate: 0.0,
            futex_waiters: 0,
            healthy: true,
            at: SimTime::ZERO,
        }
    }
}

/// What a policy hook decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Do nothing.
    Stay,
    /// Move one thread to the given kernel.
    Migrate(KernelId),
}

/// What the co-placement hook decided for one (kernel, group) pair when
/// page-table replication is enabled: the Phoenix trade-off between moving
/// the computation and moving the translation structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaDecision {
    /// Leave things where they are.
    Stay,
    /// Pull a replica of the group's page tables to this kernel
    /// ("replicate toward the threads").
    Replicate,
    /// Move one of the group's threads to the given replica-holding kernel
    /// ("migrate the threads toward their replica").
    MigrateToward(KernelId),
}

/// The telemetry a policy sees when asked for a decision: who is asking,
/// when, and the latest published snapshot of every kernel.
#[derive(Debug)]
pub struct PolicyView<'a> {
    /// The kernel invoking the policy.
    pub me: KernelId,
    /// Current simulation time.
    pub now: SimTime,
    /// Latest snapshot per kernel, indexed by kernel id.
    pub loads: &'a [KernelLoad],
}

impl PolicyView<'_> {
    /// Snapshot of `k`, if known.
    pub fn of(&self, k: KernelId) -> Option<&KernelLoad> {
        self.loads.get(k.0 as usize)
    }

    /// Snapshot of the invoking kernel.
    pub fn mine(&self) -> Option<&KernelLoad> {
        self.of(self.me)
    }

    /// Snapshots of every *other* kernel.
    pub fn peers(&self) -> impl Iterator<Item = &KernelLoad> {
        self.loads.iter().filter(move |l| l.kernel != self.me)
    }
}

/// A migration policy: decides when threads move between kernels.
///
/// All hooks default to "do nothing", so an implementation only overrides
/// the signals it cares about. Hooks take `&mut self` because real policies
/// carry hysteresis state (cooldowns, last-move stamps).
pub trait MigrationPolicy: std::fmt::Debug + Send {
    /// Short stable name for tables and results files.
    fn name(&self) -> &'static str;

    /// True only for [`ScriptedOnly`]: the machine layer skips telemetry
    /// publication, policy ticks, and every other policy hook, keeping
    /// scripted runs byte-identical to a build without this module.
    fn is_scripted_only(&self) -> bool {
        false
    }

    /// Periodic balance tick on `view.me`: push one queued thread away?
    fn balance(&mut self, view: &PolicyView<'_>) -> Decision {
        let _ = view;
        Decision::Stay
    }

    /// Periodic steal tick on `view.me`: pull work from which victim?
    /// Returning `Some(victim)` sends a steal request; the victim re-checks
    /// its own (fresher) load before granting.
    fn steal_from(&mut self, view: &PolicyView<'_>) -> Option<KernelId> {
        let _ = view;
        None
    }

    /// After `view.me` served a futex wake that released `woken` waiters,
    /// the plurality of them resident on `majority`: should the *waker*
    /// chase the waiters to their kernel?
    fn wake_locality(&mut self, view: &PolicyView<'_>, majority: KernelId, woken: u32) -> Decision {
        let _ = (view, majority, woken);
        Decision::Stay
    }

    /// A scripted migration from `view.me` asked for `requested`; the
    /// policy may reroute it (e.g. around a crashed kernel). Returning
    /// `view.me` turns the migration into a local no-op.
    fn redirect(&mut self, view: &PolicyView<'_>, requested: KernelId) -> KernelId {
        let _ = view;
        requested
    }

    /// Co-placement hook, invoked per (kernel, group) at the policy tick
    /// *only* when page-table replication is enabled: `view.me` hosts
    /// `local_threads` of the group's threads and `replica_holders` are the
    /// kernels (home included, ascending) holding a replica of its page
    /// tables. The machine layer executes the returned decision: seeding a
    /// replica, or moving one queued thread of that group toward a holder.
    fn co_place(
        &mut self,
        view: &PolicyView<'_>,
        local_threads: u32,
        replica_holders: &[KernelId],
    ) -> ReplicaDecision {
        let _ = (view, local_threads, replica_holders);
        ReplicaDecision::Stay
    }
}

/// The default policy: never initiates or redirects anything. The machine
/// layer special-cases it to skip telemetry entirely, so every scripted
/// experiment stays byte-identical.
#[derive(Debug, Default)]
pub struct ScriptedOnly;

impl MigrationPolicy for ScriptedOnly {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn is_scripted_only(&self) -> bool {
        true
    }
}

/// Runqueue-depth threshold with hysteresis (radium-style).
///
/// Migrates one queued thread from `me` to the least-loaded healthy peer
/// only when the depth difference reaches `threshold`, and then not again
/// from the same kernel until `cooldown` has passed. With `threshold >= 2`
/// a single migration closes the gap it acted on (source loses one, target
/// gains one), so two equally loaded kernels can never trade a thread back
/// and forth.
#[derive(Debug)]
pub struct LoadThreshold {
    threshold: u32,
    cooldown: SimTime,
    last_move: BTreeMap<u16, SimTime>,
}

impl LoadThreshold {
    /// Policy with the given depth threshold (clamped to >= 2 so hysteresis
    /// holds) and per-kernel cooldown.
    pub fn new(threshold: u32, cooldown: SimTime) -> Self {
        LoadThreshold {
            threshold: threshold.max(2),
            cooldown,
            last_move: BTreeMap::new(),
        }
    }

    fn cooled_down(&self, me: KernelId, now: SimTime) -> bool {
        self.last_move
            .get(&me.0)
            .is_none_or(|&t| now >= t + self.cooldown)
    }

    fn pick_target(&self, view: &PolicyView<'_>) -> Option<KernelId> {
        let my = view.mine()?;
        let target = view
            .peers()
            .filter(|l| l.healthy)
            .min_by_key(|l| (l.runq, l.kernel))?;
        (my.runq >= target.runq + self.threshold).then_some(target.kernel)
    }
}

impl Default for LoadThreshold {
    fn default() -> Self {
        // Threshold 2 is the smallest hysteresis-safe gap; the 200µs
        // cooldown spans a few telemetry periods so one imbalance is
        // corrected by one move, not a volley.
        Self::new(2, SimTime::from_micros(200))
    }
}

impl MigrationPolicy for LoadThreshold {
    fn name(&self) -> &'static str {
        "load-threshold"
    }

    fn balance(&mut self, view: &PolicyView<'_>) -> Decision {
        if !self.cooled_down(view.me, view.now) {
            return Decision::Stay;
        }
        match self.pick_target(view) {
            Some(k) => {
                self.last_move.insert(view.me.0, view.now);
                Decision::Migrate(k)
            }
            None => Decision::Stay,
        }
    }
}

/// Pull-based balancing: an idle kernel asks the busiest peer for work.
///
/// The victim is chosen by *time-weighted* mean runqueue depth (ties by
/// instantaneous depth, then lowest id), so a transient spike does not make
/// a kernel everyone's victim. The steal request is advisory: the victim
/// re-checks its own load on receipt and only grants if it still has
/// surplus, which keeps stale snapshots harmless.
#[derive(Debug)]
pub struct WorkStealing {
    min_victim: u32,
}

impl WorkStealing {
    /// Steal only from victims with at least `min_victim` runnable threads.
    pub fn new(min_victim: u32) -> Self {
        WorkStealing {
            min_victim: min_victim.max(2),
        }
    }
}

impl Default for WorkStealing {
    fn default() -> Self {
        Self::new(2)
    }
}

impl MigrationPolicy for WorkStealing {
    fn name(&self) -> &'static str {
        "work-stealing"
    }

    fn steal_from(&mut self, view: &PolicyView<'_>) -> Option<KernelId> {
        let my = view.mine()?;
        if my.runq > 0 {
            return None;
        }
        view.peers()
            .filter(|l| l.healthy && l.runq >= self.min_victim)
            .max_by(|a, b| {
                a.runq_tw
                    .total_cmp(&b.runq_tw)
                    .then(a.runq.cmp(&b.runq))
                    // Prefer the *lowest* id on a full tie.
                    .then(b.kernel.cmp(&a.kernel))
            })
            .map(|l| l.kernel)
    }
}

/// Steer a futex waker toward the kernel where most of the threads it just
/// woke live: the woken threads will immediately contend on the same word,
/// and a co-located waker turns the next wake round into local operations.
#[derive(Debug)]
pub struct FutexWakeLocality {
    min_waiters: u32,
}

impl FutexWakeLocality {
    /// Chase only wakes that released at least `min_waiters` threads.
    pub fn new(min_waiters: u32) -> Self {
        FutexWakeLocality {
            min_waiters: min_waiters.max(1),
        }
    }
}

impl Default for FutexWakeLocality {
    fn default() -> Self {
        Self::new(2)
    }
}

impl MigrationPolicy for FutexWakeLocality {
    fn name(&self) -> &'static str {
        "futex-locality"
    }

    fn wake_locality(&mut self, view: &PolicyView<'_>, majority: KernelId, woken: u32) -> Decision {
        if majority == view.me || woken < self.min_waiters {
            return Decision::Stay;
        }
        let ok = view.of(majority).is_some_and(|l| l.healthy);
        if ok {
            Decision::Migrate(majority)
        } else {
            Decision::Stay
        }
    }
}

/// Load-threshold balancing that additionally consults the fault plan:
/// never selects a crashed or blacked-out kernel, and reroutes scripted
/// migrations aimed at one to the healthiest alternative (falling back to
/// staying home when no healthy peer exists).
#[derive(Debug, Default)]
pub struct FaultAware {
    inner: LoadThreshold,
}

impl FaultAware {
    fn healthiest(view: &PolicyView<'_>) -> Option<KernelId> {
        view.peers()
            .filter(|l| l.healthy)
            .min_by_key(|l| (l.runq, l.kernel))
            .map(|l| l.kernel)
    }
}

impl MigrationPolicy for FaultAware {
    fn name(&self) -> &'static str {
        "fault-aware"
    }

    fn balance(&mut self, view: &PolicyView<'_>) -> Decision {
        // LoadThreshold already filters unhealthy targets.
        self.inner.balance(view)
    }

    fn redirect(&mut self, view: &PolicyView<'_>, requested: KernelId) -> KernelId {
        if requested == view.me || view.of(requested).is_none_or(|l| l.healthy) {
            return requested;
        }
        Self::healthiest(view).unwrap_or(view.me)
    }
}

/// Phoenix-style thread/page-table co-placement, built on the PR-6
/// telemetry: a kernel faulting hard on a group whose page tables it does
/// not replicate either pulls a replica to itself (when enough of the
/// group's threads run here to amortize the replica's update traffic) or
/// sends one thread to an existing replica holder (when the thread is the
/// cheaper thing to move). Hysteresis mirrors [`LoadThreshold`]: a
/// fault-rate floor keeps cold groups untouched, and a per-kernel cooldown
/// ensures one pressure signal triggers one action, not a volley.
#[derive(Debug)]
pub struct ReplicaAware {
    /// Act only when the recent fault rate (faults/ms) reaches this floor.
    min_fault_rate: f64,
    /// At least this many group threads here → replicate toward them;
    /// fewer → migrate a thread toward the replica.
    replicate_min_threads: u32,
    cooldown: SimTime,
    last_act: BTreeMap<u16, SimTime>,
}

impl ReplicaAware {
    /// Policy with the given fault-rate floor, replicate-vs-migrate thread
    /// threshold (clamped to >= 1), and per-kernel cooldown.
    pub fn new(min_fault_rate: f64, replicate_min_threads: u32, cooldown: SimTime) -> Self {
        ReplicaAware {
            min_fault_rate,
            replicate_min_threads: replicate_min_threads.max(1),
            cooldown,
            last_act: BTreeMap::new(),
        }
    }

    fn cooled_down(&self, me: KernelId, now: SimTime) -> bool {
        self.last_act
            .get(&me.0)
            .is_none_or(|&t| now >= t + self.cooldown)
    }
}

impl Default for ReplicaAware {
    fn default() -> Self {
        // One fault per millisecond is already a remote-walk-dominated
        // group; the 200µs cooldown spans a few telemetry periods, the
        // same pacing LoadThreshold uses.
        Self::new(1.0, 2, SimTime::from_micros(200))
    }
}

impl MigrationPolicy for ReplicaAware {
    fn name(&self) -> &'static str {
        "replica-aware"
    }

    fn co_place(
        &mut self,
        view: &PolicyView<'_>,
        local_threads: u32,
        replica_holders: &[KernelId],
    ) -> ReplicaDecision {
        if local_threads == 0 || replica_holders.contains(&view.me) {
            return ReplicaDecision::Stay; // already co-placed
        }
        let faulting = view
            .mine()
            .is_some_and(|l| l.fault_rate >= self.min_fault_rate);
        if !faulting || !self.cooled_down(view.me, view.now) {
            return ReplicaDecision::Stay;
        }
        if local_threads >= self.replicate_min_threads {
            self.last_act.insert(view.me.0, view.now);
            return ReplicaDecision::Replicate;
        }
        // Few threads: the thread is cheaper to move than the tables.
        // Lowest healthy holder, for determinism.
        let target = replica_holders
            .iter()
            .find(|&&k| view.of(k).is_none_or(|l| l.healthy))
            .copied();
        match target {
            Some(k) => {
                self.last_act.insert(view.me.0, view.now);
                ReplicaDecision::MigrateToward(k)
            }
            None => ReplicaDecision::Stay,
        }
    }
}

/// Configuration-level selector for a [`MigrationPolicy`], so a policy
/// choice can travel inside plain-data parameter structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Only workload-scripted migrations (the byte-identical default).
    #[default]
    ScriptedOnly,
    /// Runqueue-depth threshold with hysteresis.
    LoadThreshold,
    /// Idle kernels pull work from the busiest peer.
    WorkStealing,
    /// Wakers chase the waiters they released.
    FutexWakeLocality,
    /// Threshold balancing that routes around crashed/blacked-out kernels.
    FaultAware,
    /// Phoenix-style thread/page-table co-placement (requires
    /// `page_table_replication`; its hook is otherwise never invoked).
    ReplicaAware,
}

impl PolicyKind {
    /// Every selectable policy, scripted first.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::ScriptedOnly,
        PolicyKind::LoadThreshold,
        PolicyKind::WorkStealing,
        PolicyKind::FutexWakeLocality,
        PolicyKind::FaultAware,
        PolicyKind::ReplicaAware,
    ];

    /// Instantiates the policy with its default tuning.
    pub fn build(self) -> Box<dyn MigrationPolicy> {
        match self {
            PolicyKind::ScriptedOnly => Box::new(ScriptedOnly),
            PolicyKind::LoadThreshold => Box::<LoadThreshold>::default(),
            PolicyKind::WorkStealing => Box::<WorkStealing>::default(),
            PolicyKind::FutexWakeLocality => Box::<FutexWakeLocality>::default(),
            PolicyKind::FaultAware => Box::<FaultAware>::default(),
            PolicyKind::ReplicaAware => Box::<ReplicaAware>::default(),
        }
    }

    /// The policy's stable name (matches [`MigrationPolicy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::ScriptedOnly => "scripted",
            PolicyKind::LoadThreshold => "load-threshold",
            PolicyKind::WorkStealing => "work-stealing",
            PolicyKind::FutexWakeLocality => "futex-locality",
            PolicyKind::FaultAware => "fault-aware",
            PolicyKind::ReplicaAware => "replica-aware",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_from(loads: &[KernelLoad], me: u16, now_ns: u64) -> PolicyView<'_> {
        PolicyView {
            me: KernelId(me),
            now: SimTime::from_nanos(now_ns),
            loads,
        }
    }

    fn loads(runqs: &[u32]) -> Vec<KernelLoad> {
        runqs
            .iter()
            .enumerate()
            .map(|(i, &q)| KernelLoad {
                runq: q,
                runq_tw: q as f64,
                ..KernelLoad::empty(KernelId(i as u16))
            })
            .collect()
    }

    /// Tiny deterministic LCG for property-style tests.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 >> 33
        }
    }

    #[test]
    fn names_match_kinds() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn scripted_only_is_inert() {
        let mut p = ScriptedOnly;
        assert!(p.is_scripted_only());
        let ls = loads(&[9, 0, 0, 0]);
        let v = view_from(&ls, 0, 1_000);
        assert_eq!(p.balance(&v), Decision::Stay);
        assert_eq!(p.steal_from(&v), None);
        assert_eq!(p.wake_locality(&v, KernelId(1), 10), Decision::Stay);
        assert_eq!(p.redirect(&v, KernelId(3)), KernelId(3));
    }

    /// Property: FaultAware never selects a crashed/blacked-out kernel, in
    /// any hook, over randomized views.
    #[test]
    fn fault_aware_never_selects_unhealthy() {
        let mut rng = Lcg(0xFA17_0A3E);
        let mut p = FaultAware::default();
        for round in 0..2_000 {
            let n = 2 + (rng.next() % 7) as usize;
            let ls: Vec<KernelLoad> = (0..n)
                .map(|i| KernelLoad {
                    runq: (rng.next() % 10) as u32,
                    runq_tw: (rng.next() % 10) as f64,
                    fault_rate: (rng.next() % 5) as f64,
                    futex_waiters: (rng.next() % 8) as u32,
                    healthy: !rng.next().is_multiple_of(3),
                    ..KernelLoad::empty(KernelId(i as u16))
                })
                .collect();
            let me = (rng.next() % n as u64) as u16;
            let v = view_from(&ls, me, round * 10_000);
            if let Decision::Migrate(k) = p.balance(&v) {
                assert!(ls[k.0 as usize].healthy, "balance picked unhealthy {k}");
                assert_ne!(k, v.me);
            }
            let requested = KernelId((rng.next() % n as u64) as u16);
            let got = p.redirect(&v, requested);
            // Either the (healthy) requested target, or a healthy reroute,
            // or home as the last resort.
            assert!(
                got == v.me || ls[got.0 as usize].healthy,
                "redirect picked unhealthy {got}"
            );
            if requested != v.me && ls[requested.0 as usize].healthy {
                assert_eq!(got, requested, "healthy request must not be rerouted");
            }
        }
    }

    #[test]
    fn fault_aware_redirect_falls_back_home_when_all_unhealthy() {
        let mut ls = loads(&[1, 1, 1]);
        for l in &mut ls[1..] {
            l.healthy = false;
        }
        let v = view_from(&ls, 0, 0);
        let mut p = FaultAware::default();
        assert_eq!(p.redirect(&v, KernelId(2)), KernelId(0));
    }

    /// Property: LoadThreshold hysteresis cannot ping-pong a thread between
    /// two equally loaded kernels — simulate decisions being applied and
    /// check the system reaches a fixed point with at most one move per
    /// initial imbalance.
    #[test]
    fn load_threshold_cannot_ping_pong() {
        // Equal loads: no move, ever.
        let mut p = LoadThreshold::default();
        let mut runqs = vec![3u32, 3];
        for tick in 0..100u64 {
            let ls = loads(&runqs);
            let me = (tick % 2) as u16;
            let v = view_from(&ls, me, tick * 1_000_000);
            assert_eq!(p.balance(&v), Decision::Stay, "equal loads must stay");
        }
        // Off-by-one: still inside the hysteresis band.
        runqs = vec![4, 3];
        for tick in 0..100u64 {
            let ls = loads(&runqs);
            let v = view_from(&ls, (tick % 2) as u16, tick * 1_000_000);
            assert_eq!(p.balance(&v), Decision::Stay, "gap < threshold must stay");
        }
        // A real imbalance: exactly one corrective move, then quiescence.
        let mut p = LoadThreshold::default();
        runqs = vec![5, 3];
        let mut moves = 0;
        for tick in 0..100u64 {
            let ls = loads(&runqs);
            let me = (tick % 2) as u16;
            let v = view_from(&ls, me, tick * 1_000_000);
            if let Decision::Migrate(k) = p.balance(&v) {
                runqs[me as usize] -= 1;
                runqs[k.0 as usize] += 1;
                moves += 1;
            }
        }
        assert_eq!(moves, 1, "one imbalance, one move");
        assert_eq!(runqs, vec![4, 4]);
    }

    #[test]
    fn load_threshold_ignores_unhealthy_targets() {
        let mut ls = loads(&[6, 0, 5]);
        ls[1].healthy = false;
        let v = view_from(&ls, 0, 0);
        let mut p = LoadThreshold::default();
        // kernel1 is the least loaded but unhealthy; kernel2's gap (1) is
        // inside the band, so the right answer is Stay, not kernel1.
        assert_eq!(p.balance(&v), Decision::Stay);
    }

    #[test]
    fn work_stealing_prefers_time_weighted_victim() {
        let mut ls = loads(&[0, 4, 4]);
        // kernel1 spiked just now; kernel2 has been deep for a while.
        ls[1].runq_tw = 0.5;
        ls[2].runq_tw = 3.5;
        let v = view_from(&ls, 0, 0);
        let mut p = WorkStealing::default();
        assert_eq!(p.steal_from(&v), Some(KernelId(2)));
        // A busy kernel does not steal.
        let busy = loads(&[2, 8, 8]);
        let v = view_from(&busy, 0, 0);
        assert_eq!(p.steal_from(&v), None);
    }

    #[test]
    fn replica_aware_replicates_or_chases_by_thread_count() {
        let mut ls = loads(&[2, 1, 1]);
        ls[0].fault_rate = 5.0; // hot group on kernel 0
        let v = view_from(&ls, 0, 1_000_000);
        let holders = [KernelId(2)];
        let mut p = ReplicaAware::default();
        // Many local threads: pull the tables here.
        assert_eq!(p.co_place(&v, 3, &holders), ReplicaDecision::Replicate);
        // Cooldown: the very next tick must not act again.
        let v2 = view_from(&ls, 0, 1_050_000);
        assert_eq!(p.co_place(&v2, 3, &holders), ReplicaDecision::Stay);
        // One lone thread on a fresh kernel: chase the replica instead.
        let mut ls1 = loads(&[2, 1, 1]);
        ls1[1].fault_rate = 5.0;
        let v3 = view_from(&ls1, 1, 1_000_000);
        assert_eq!(
            p.co_place(&v3, 1, &holders),
            ReplicaDecision::MigrateToward(KernelId(2))
        );
    }

    #[test]
    fn replica_aware_stays_when_cold_or_co_placed() {
        let ls = loads(&[2, 1]); // fault_rate 0 everywhere
        let v = view_from(&ls, 0, 1_000_000);
        let mut p = ReplicaAware::default();
        assert_eq!(
            p.co_place(&v, 4, &[KernelId(1)]),
            ReplicaDecision::Stay,
            "cold group must not trigger placement"
        );
        let mut hot = loads(&[2, 1]);
        hot[0].fault_rate = 9.0;
        let v = view_from(&hot, 0, 1_000_000);
        assert_eq!(
            p.co_place(&v, 4, &[KernelId(0), KernelId(1)]),
            ReplicaDecision::Stay,
            "a holder is already co-placed"
        );
        assert_eq!(
            p.co_place(&v, 0, &[KernelId(1)]),
            ReplicaDecision::Stay,
            "no local threads, nothing to co-place"
        );
    }

    #[test]
    fn replica_aware_skips_unhealthy_holders() {
        let mut ls = loads(&[1, 1, 1]);
        ls[0].fault_rate = 9.0;
        ls[1].healthy = false;
        let v = view_from(&ls, 0, 1_000_000);
        let mut p = ReplicaAware::default();
        assert_eq!(
            p.co_place(&v, 1, &[KernelId(1), KernelId(2)]),
            ReplicaDecision::MigrateToward(KernelId(2))
        );
    }

    #[test]
    fn wake_locality_chases_majority_only() {
        let ls = loads(&[1, 5, 1]);
        let v = view_from(&ls, 0, 0);
        let mut p = FutexWakeLocality::default();
        assert_eq!(
            p.wake_locality(&v, KernelId(1), 6),
            Decision::Migrate(KernelId(1))
        );
        assert_eq!(
            p.wake_locality(&v, KernelId(0), 6),
            Decision::Stay,
            "already home"
        );
        assert_eq!(
            p.wake_locality(&v, KernelId(1), 1),
            Decision::Stay,
            "too few woken"
        );
        let mut sick = loads(&[1, 5, 1]);
        sick[1].healthy = false;
        let v = view_from(&sick, 0, 0);
        assert_eq!(p.wake_locality(&v, KernelId(1), 6), Decision::Stay);
    }
}
