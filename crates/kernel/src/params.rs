//! Kernel software-path cost constants shared by all three OS models.
//!
//! These price the *uncontended* software paths; contention is added on top
//! by the lock-site models (SMP) or messaging (replicated kernel). Values
//! approximate 2015-era Linux on the hardware of `HwParams::default`
//! (see EXPERIMENTS.md §Calibration).

use popcorn_sim::SimTime;

/// Per-kernel software cost constants (nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct OsParams {
    /// Syscall trap entry + exit.
    pub syscall_entry_ns: u64,
    /// Context switch between two threads on one core.
    pub context_switch_ns: u64,
    /// Scheduler time slice.
    pub quantum_us: u64,
    /// Thread clone: task struct allocation and wiring (no scheduling).
    pub clone_base_ns: u64,
    /// Thread exit teardown.
    pub exit_ns: u64,
    /// `mmap` software path excluding address-space locking.
    pub mmap_base_ns: u64,
    /// `munmap` software path excluding locking and TLB shootdown.
    pub munmap_base_ns: u64,
    /// Servicing an anonymous minor fault (allocate + zero + map).
    pub fault_service_ns: u64,
    /// Futex syscall software path (hash, queue ops) excluding locking.
    pub futex_base_ns: u64,
    /// Waking a task: scheduler enqueue (plus an IPI if its core idles).
    pub wakeup_ns: u64,
    /// Page-allocator lock hold per page allocated/freed. On SMP this lock
    /// is machine-global (see `SmpParams`); on the partitioned kernels each
    /// kernel has its own allocator, contended only by its own cores.
    pub zone_lock_hold_ns: u64,
    /// Maximum user ops executed per scheduler interaction (simulation
    /// batching bound; does not affect modelled time).
    pub max_batched_ops: u32,
}

impl Default for OsParams {
    fn default() -> Self {
        OsParams {
            syscall_entry_ns: 140,
            context_switch_ns: 1_600,
            quantum_us: 1_000,
            clone_base_ns: 11_000,
            exit_ns: 6_000,
            mmap_base_ns: 1_800,
            munmap_base_ns: 2_200,
            fault_service_ns: 1_100,
            futex_base_ns: 550,
            wakeup_ns: 900,
            zone_lock_hold_ns: 230,
            max_batched_ops: 512,
        }
    }
}

impl OsParams {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.quantum_us == 0 {
            return Err("quantum must be positive".into());
        }
        if self.max_batched_ops == 0 {
            return Err("max_batched_ops must be positive".into());
        }
        Ok(())
    }

    /// The scheduler time slice as time.
    pub fn quantum(&self) -> SimTime {
        SimTime::from_micros(self.quantum_us)
    }

    /// Syscall entry/exit overhead as time.
    pub fn syscall_entry(&self) -> SimTime {
        SimTime::from_nanos(self.syscall_entry_ns)
    }

    /// Context switch cost as time.
    pub fn context_switch(&self) -> SimTime {
        SimTime::from_nanos(self.context_switch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(OsParams::default().validate(), Ok(()));
    }

    #[test]
    fn zero_quantum_rejected() {
        let p = OsParams {
            quantum_us: 0,
            ..OsParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_batch_rejected() {
        let p = OsParams {
            max_batched_ops: 0,
            ..OsParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn accessors_convert_units() {
        let p = OsParams::default();
        assert_eq!(p.quantum(), SimTime::from_micros(p.quantum_us));
        assert_eq!(p.syscall_entry().as_nanos(), p.syscall_entry_ns);
        assert_eq!(p.context_switch().as_nanos(), p.context_switch_ns);
    }
}
