#![warn(missing_docs)]
//! Kernel-instance model for the Popcorn replicated-kernel OS reproduction.
//!
//! This crate is the *mechanism layer* shared by all three OS models the
//! evaluation compares (Popcorn, SMP Linux-like, Barrelfish-like
//! multikernel):
//!
//! - [`types`] — task/group/address identifiers, CPU context;
//! - [`program`] — user threads as resumable state machines
//!   ([`program::Program`]);
//! - [`mm`] — address-space replicas: VMAs, page-protocol state, contents;
//! - [`task`] — thread control blocks;
//! - [`futex`] — authoritative synchronization words and wait queues;
//! - [`kernel`] — the kernel instance: per-core scheduling and the
//!   execution loop ([`Kernel::run_core`](kernel::Kernel::run_core));
//! - [`params`] — calibrated software-path costs;
//! - [`policy`] — migration policies ([`policy::MigrationPolicy`]): *when*
//!   and where threads move, fed by per-kernel load telemetry;
//! - [`osmodel`] — the scaffolding OS models plug their policy into, plus
//!   the harness-facing [`osmodel::OsModel`] interface.
//!
//! Cross-kernel *protocol* — migration mechanics, address-space
//! consistency, distributed futexes — intentionally lives above this
//! crate, in `popcorn-core` (the paper's contribution) and
//! `popcorn-baselines`; [`policy`] only decides, it never moves state.
//!
//! # Example: a one-kernel machine running one program
//!
//! ```
//! use popcorn_hw::{Machine, Topology, HwParams, CoreId};
//! use popcorn_msg::KernelId;
//! use popcorn_kernel::kernel::{Kernel, RunOutcome};
//! use popcorn_kernel::mm::Mm;
//! use popcorn_kernel::params::OsParams;
//! use popcorn_kernel::program::{Program, Op, Resume, ProgEnv};
//! use popcorn_kernel::types::GroupId;
//! use popcorn_sim::SimTime;
//!
//! #[derive(Debug)]
//! struct Hello;
//! impl Program for Hello {
//!     fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op { Op::Exit(0) }
//! }
//!
//! let machine = Machine::new(Topology::single_socket(1), HwParams::default());
//! let mut k = Kernel::new(KernelId(0), vec![CoreId(0)], OsParams::default(), machine);
//! let leader = k.alloc_tid();
//! let group = GroupId(leader);
//! k.adopt_mm(Mm::new(group));
//! let core = k.spawn(leader, group, Box::new(Hello), None, SimTime::ZERO);
//! assert!(matches!(k.run_core(SimTime::ZERO, core), RunOutcome::Exited { code: 0, .. }));
//! ```

pub mod futex;
pub mod kernel;
pub mod mm;
pub mod osmodel;
pub mod params;
pub mod policy;
pub mod program;
pub mod task;
pub mod types;

pub use kernel::{Kernel, RunOutcome};
pub use osmodel::{OsEvent, OsMachine, OsModel, RunReport};
pub use params::OsParams;
pub use policy::{Decision, KernelLoad, MigrationPolicy, PolicyKind, PolicyView};
pub use program::{Op, Program, Resume};
pub use types::{GroupId, Tid, VAddr};
