//! A kernel instance: per-core scheduling, task lifecycle, memory access
//! execution, and the interaction points where an OS model takes over
//! (syscalls, faults, synchronization ops).
//!
//! `Kernel` is the *mechanism* shared by all three OS models. It never
//! touches the message fabric or another kernel — cross-kernel policy lives
//! in `popcorn-core` and `popcorn-baselines`. The OS model drives each core
//! by calling [`Kernel::run_core`], which executes the current thread's
//! operations in virtual time until something needs OS attention and
//! reports a [`RunOutcome`].

use std::collections::{HashMap, VecDeque};

use popcorn_hw::{CoreId, Machine};
use popcorn_msg::KernelId;
use popcorn_sim::{Counter, Histogram, SimTime};

use crate::mm::{AccessCheck, Mm};
use crate::params::OsParams;
use crate::program::{Op, ProgEnv, Resume, RmwOp, SysResult, SyscallReq};
use crate::task::{BlockReason, Task, TaskState, TaskStats};
use crate::types::{GroupId, PageNo, Tid, VAddr};

/// Scheduling state of one core.
#[derive(Debug)]
struct CoreState {
    id: CoreId,
    current: Option<Tid>,
    runqueue: VecDeque<Tid>,
    busy_until: SimTime,
    slice_end: SimTime,
}

impl CoreState {
    fn new(id: CoreId) -> Self {
        CoreState {
            id,
            current: None,
            runqueue: VecDeque::new(),
            busy_until: SimTime::ZERO,
            slice_end: SimTime::ZERO,
        }
    }

    fn load(&self) -> usize {
        self.runqueue.len() + usize::from(self.current.is_some())
    }
}

/// What [`Kernel::run_core`] found to do.
#[derive(Debug)]
pub enum RunOutcome {
    /// No runnable task; the core sleeps until a wake kicks it.
    Idle,
    /// The core is occupied until `until`; re-poll then.
    Busy {
        /// When the occupation ends.
        until: SimTime,
    },
    /// The time slice expired and another thread was switched in.
    Preempted {
        /// When the switched-in thread starts running.
        at: SimTime,
    },
    /// The current thread trapped into a syscall; the OS model must handle
    /// it (the task is `InSyscall`, still current on the core).
    Syscall {
        /// Calling thread.
        tid: Tid,
        /// The request.
        req: SyscallReq,
        /// Trap completion time (request is live from here).
        at: SimTime,
    },
    /// The current thread issued an atomic RMW on a synchronization word;
    /// the OS model's sync engine must produce the old value and cost.
    SyncOp {
        /// Calling thread.
        tid: Tid,
        /// Word address.
        addr: VAddr,
        /// The operation.
        op: RmwOp,
        /// When the op was issued.
        at: SimTime,
    },
    /// The current thread took a page fault the OS model must resolve
    /// (absent page, write to a read-shared page, or an access with no
    /// local VMA). The task stays current with the faulting op pending.
    Fault {
        /// Faulting thread.
        tid: Tid,
        /// Faulting page.
        page: PageNo,
        /// Whether write access is required.
        write: bool,
        /// No local VMA covers the address. On SMP this is a segfault; on
        /// the replicated kernel the VMA may simply not be replicated yet
        /// (the paper's on-demand VMA retrieval).
        no_vma: bool,
        /// Fault time.
        at: SimTime,
    },
    /// The current thread exited (voluntarily or by segfault).
    Exited {
        /// The thread.
        tid: Tid,
        /// Exit status (139 for a segfault, mirroring SIGSEGV).
        code: i32,
        /// Completion time of exit teardown.
        at: SimTime,
    },
}

/// Aggregated kernel-side statistics.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Syscalls trapped.
    pub syscalls: Counter,
    /// Page faults raised to the OS model.
    pub faults: Counter,
    /// Context switches performed.
    pub ctx_switches: Counter,
    /// Tasks spawned on this kernel.
    pub spawned: Counter,
    /// Tasks exited on this kernel.
    pub exited: Counter,
    /// Segmentation faults (accesses outside any VMA).
    pub segv: Counter,
    /// Scheduling latency: wake-to-run (recorded at dispatch).
    pub sched_latency: Histogram,
}

/// One kernel instance owning a set of cores.
#[derive(Debug)]
pub struct Kernel {
    id: KernelId,
    cores: Vec<CoreState>,
    core_index: HashMap<CoreId, usize>,
    tasks: HashMap<Tid, Task>,
    mms: HashMap<GroupId, Mm>,
    next_local_tid: u32,
    params: OsParams,
    machine: Machine,
    mem_access: SimTime,
    /// Pending memory op of a faulted task, re-attempted after resolution.
    pending_ops: HashMap<Tid, Op>,
    /// Wake timestamps for scheduling-latency accounting.
    wake_stamp: HashMap<Tid, SimTime>,
    /// Rotating tie-breaker for spawn placement (so threads that block
    /// immediately still spread across cores).
    spawn_cursor: usize,
    /// Statistics.
    pub stats: KernelStats,
}

impl Kernel {
    /// Creates a kernel owning `cores`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty, contains duplicates or out-of-topology
    /// ids, or `params` fail validation.
    pub fn new(id: KernelId, cores: Vec<CoreId>, params: OsParams, machine: Machine) -> Self {
        assert!(!cores.is_empty(), "kernel needs at least one core");
        params.validate().expect("invalid OS parameters");
        let mut core_index = HashMap::new();
        for (i, &c) in cores.iter().enumerate() {
            assert!(machine.topology().contains(c), "{c} not in topology");
            assert!(core_index.insert(c, i).is_none(), "duplicate core {c}");
        }
        let mem_access = SimTime::from_nanos(machine.params().llc_hit_ns);
        Kernel {
            id,
            cores: cores.into_iter().map(CoreState::new).collect(),
            core_index,
            tasks: HashMap::new(),
            mms: HashMap::new(),
            next_local_tid: 1,
            params,
            machine,
            mem_access,
            pending_ops: HashMap::new(),
            wake_stamp: HashMap::new(),
            spawn_cursor: 0,
            stats: KernelStats::default(),
        }
    }

    /// This kernel's id.
    pub fn id(&self) -> KernelId {
        self.id
    }

    /// The cores this kernel owns, in configuration order.
    pub fn cores(&self) -> Vec<CoreId> {
        self.cores.iter().map(|c| c.id).collect()
    }

    /// The configured software-cost parameters.
    pub fn params(&self) -> &OsParams {
        &self.params
    }

    /// The machine model.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Allocates a fresh, globally unique tid originating at this kernel.
    pub fn alloc_tid(&mut self) -> Tid {
        let t = Tid::new(self.id, self.next_local_tid);
        self.next_local_tid += 1;
        t
    }

    /// Registers an address-space replica for a group hosted here.
    ///
    /// # Panics
    ///
    /// Panics if the group already has a replica on this kernel.
    pub fn adopt_mm(&mut self, mm: Mm) {
        let group = mm.group();
        let prev = self.mms.insert(group, mm);
        assert!(prev.is_none(), "{group} already has an mm replica here");
    }

    /// Whether a replica for `group` exists here.
    pub fn has_mm(&self, group: GroupId) -> bool {
        self.mms.contains_key(&group)
    }

    /// The replica for `group`.
    ///
    /// # Panics
    ///
    /// Panics if no replica exists.
    pub fn mm(&self, group: GroupId) -> &Mm {
        self.mms
            .get(&group)
            .unwrap_or_else(|| panic!("no mm replica for {group} on {}", self.id))
    }

    /// Mutable access to the replica for `group`.
    ///
    /// # Panics
    ///
    /// Panics if no replica exists.
    pub fn mm_mut(&mut self, group: GroupId) -> &mut Mm {
        let id = self.id;
        self.mms
            .get_mut(&group)
            .unwrap_or_else(|| panic!("no mm replica for {group} on {id}"))
    }

    /// Drops the replica for `group` (group exit), returning it.
    pub fn drop_mm(&mut self, group: GroupId) -> Option<Mm> {
        self.mms.remove(&group)
    }

    /// A task by id.
    pub fn task(&self, tid: Tid) -> Option<&Task> {
        self.tasks.get(&tid)
    }

    /// A task by id, mutably.
    pub fn task_mut(&mut self, tid: Tid) -> Option<&mut Task> {
        self.tasks.get_mut(&tid)
    }

    /// Iterates hosted task ids in deterministic order.
    pub fn task_ids(&self) -> Vec<Tid> {
        let mut v: Vec<_> = self.tasks.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The least-loaded core; ties break round-robin so that threads that
    /// block immediately (and stop counting as load) still spread out.
    pub fn least_loaded_core(&mut self) -> CoreId {
        let n = self.cores.len();
        let cursor = self.spawn_cursor;
        let (i, id) = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(i, c)| (c.load(), (i + n - cursor % n) % n))
            .map(|(i, c)| (i, c.id))
            .expect("kernel has cores");
        self.spawn_cursor = i + 1;
        id
    }

    /// Creates a ready task and enqueues it. Returns the core to kick.
    ///
    /// # Panics
    ///
    /// Panics if the tid already exists, the core (when given) is not owned
    /// by this kernel, or the group has no mm replica here.
    pub fn spawn(
        &mut self,
        tid: Tid,
        group: GroupId,
        program: Box<dyn crate::program::Program>,
        core: Option<CoreId>,
        now: SimTime,
    ) -> CoreId {
        assert!(self.has_mm(group), "spawn before mm replica for {group}");
        assert!(!self.tasks.contains_key(&tid), "{tid} already exists");
        let core = core.unwrap_or_else(|| self.least_loaded_core());
        let ci = *self
            .core_index
            .get(&core)
            .unwrap_or_else(|| panic!("{core} not owned by {}", self.id));
        let task = Task::new(tid, group, program, core);
        self.tasks.insert(tid, task);
        self.cores[ci].runqueue.push_back(tid);
        self.wake_stamp.insert(tid, now);
        self.stats.spawned.incr();
        core
    }

    fn core_state_mut(&mut self, core: CoreId) -> &mut CoreState {
        let id = self.id;
        let ci = *self
            .core_index
            .get(&core)
            .unwrap_or_else(|| panic!("{core} not owned by {id}"));
        &mut self.cores[ci]
    }

    fn core_state(&self, core: CoreId) -> &CoreState {
        let ci = *self
            .core_index
            .get(&core)
            .unwrap_or_else(|| panic!("{core} not owned by {}", self.id));
        &self.cores[ci]
    }

    /// Current runnable load (running + queued) of a core.
    pub fn core_load(&self, core: CoreId) -> usize {
        self.core_state(core).load()
    }

    /// Total runnable load across all cores (for machine-wide placement).
    pub fn total_load(&self) -> usize {
        self.cores.iter().map(CoreState::load).sum()
    }

    /// Executes the given core from `now` until something needs the OS
    /// model's attention (see [`RunOutcome`]).
    pub fn run_core(&mut self, now: SimTime, core: CoreId) -> RunOutcome {
        let ci = *self
            .core_index
            .get(&core)
            .unwrap_or_else(|| panic!("{core} not owned by {}", self.id));

        if self.cores[ci].busy_until > now {
            return RunOutcome::Busy {
                until: self.cores[ci].busy_until,
            };
        }
        let mut t = now;

        // Dispatch a thread if the core is empty.
        if self.cores[ci].current.is_none() {
            let Some(next) = self.cores[ci].runqueue.pop_front() else {
                return RunOutcome::Idle;
            };
            t += self.params.context_switch();
            self.stats.ctx_switches.incr();
            if let Some(woke) = self.wake_stamp.remove(&next) {
                self.stats.sched_latency.record_time(t.saturating_sub(woke));
            }
            let task = self.tasks.get_mut(&next).expect("queued task exists");
            task.state = TaskState::Running;
            task.stats.ctx_switches += 1;
            self.cores[ci].current = Some(next);
            self.cores[ci].slice_end = t + self.params.quantum();
        }
        let tid = self.cores[ci].current.expect("dispatched above");
        debug_assert!(
            matches!(self.tasks[&tid].state, TaskState::Running),
            "current task {tid} not Running: {:?}",
            self.tasks[&tid].state
        );

        let mut ops = 0u32;
        loop {
            // Slice renewal for a sole runner: nobody to switch to.
            if t >= self.cores[ci].slice_end && self.cores[ci].runqueue.is_empty() {
                self.cores[ci].slice_end = t + self.params.quantum();
            }
            // Preemption check between ops.
            if t >= self.cores[ci].slice_end && !self.cores[ci].runqueue.is_empty() {
                let task = self.tasks.get_mut(&tid).expect("current exists");
                task.state = TaskState::Ready;
                self.cores[ci].current = None;
                self.cores[ci].runqueue.push_back(tid);
                self.cores[ci].busy_until = t;
                self.wake_stamp.insert(tid, t);
                return RunOutcome::Preempted { at: t };
            }
            // Batching bound: yield to the event loop without modelling cost.
            if ops >= self.params.max_batched_ops {
                self.cores[ci].busy_until = t;
                return RunOutcome::Busy { until: t };
            }
            ops += 1;

            // Take the pending (faulted) op if any, else step the program.
            let op = match self.pending_ops.remove(&tid) {
                Some(op) => op,
                None => {
                    let task = self.tasks.get_mut(&tid).expect("current exists");
                    let env = ProgEnv {
                        tid,
                        core,
                        kernel: self.id,
                        now: t,
                    };
                    let resume = std::mem::replace(&mut task.resume, Resume::Done);
                    task.program
                        .as_mut()
                        .unwrap_or_else(|| panic!("{tid} has no program (shadow ran?)"))
                        .step(resume, &env)
                }
            };

            match op {
                Op::Compute(cycles) => {
                    let dt = self.machine.cycles(cycles);
                    let slice_end = self.cores[ci].slice_end;
                    if t + dt > slice_end && dt > SimTime::ZERO {
                        // Compute is preemptible: run to the slice end and
                        // park the remainder as a pending op. The core
                        // re-evaluates every quantum, so a 50 ms chunk can
                        // neither monopolize the core nor hide a newly
                        // woken thread behind pre-charged busy time.
                        let available = slice_end.saturating_sub(t);
                        let consumed_cycles = ((cycles as u128 * available.as_nanos() as u128)
                            / dt.as_nanos().max(1) as u128)
                            as u64;
                        let remaining = cycles - consumed_cycles.min(cycles);
                        if remaining > 0 {
                            self.pending_ops.insert(tid, Op::Compute(remaining));
                            let task = self.tasks.get_mut(&tid).expect("current exists");
                            task.stats.cpu_time += available;
                            t = slice_end;
                            if self.cores[ci].runqueue.is_empty() {
                                // Sole runner: yield to the event loop so
                                // arrivals within this quantum get seen.
                                self.cores[ci].busy_until = t;
                                return RunOutcome::Busy { until: t };
                            }
                            continue; // the loop head performs the preemption
                        }
                    }
                    t += dt;
                    let task = self.tasks.get_mut(&tid).expect("current exists");
                    task.stats.cpu_time += dt;
                    task.resume = Resume::Done;
                }
                Op::Load(addr) | Op::Store(addr, _) => {
                    let write = matches!(op, Op::Store(..));
                    let group = self.tasks[&tid].group;
                    let mm = self.mms.get(&group).expect("task group has mm");
                    match mm.check_access(addr, write) {
                        AccessCheck::Ok => {
                            t += self.mem_access;
                            let task_resume;
                            if let Op::Store(addr, val) = op {
                                self.mms
                                    .get_mut(&group)
                                    .expect("checked above")
                                    .write_word(addr, val);
                                task_resume = Resume::Done;
                            } else {
                                task_resume = Resume::Value(mm.read_word(addr));
                            }
                            let task = self.tasks.get_mut(&tid).expect("current exists");
                            task.stats.cpu_time += self.mem_access;
                            task.resume = task_resume;
                        }
                        AccessCheck::NeedPage { page, write } => {
                            self.pending_ops.insert(tid, op);
                            let task = self.tasks.get_mut(&tid).expect("current exists");
                            task.stats.faults += 1;
                            self.stats.faults.incr();
                            self.cores[ci].busy_until = t;
                            return RunOutcome::Fault {
                                tid,
                                page,
                                write,
                                no_vma: false,
                                at: t,
                            };
                        }
                        AccessCheck::NoVma => {
                            // No local VMA. The OS model decides whether
                            // this is a segfault (SMP) or a VMA to fetch
                            // from the home kernel (replicated kernel).
                            self.pending_ops.insert(tid, op);
                            let task = self.tasks.get_mut(&tid).expect("current exists");
                            task.stats.faults += 1;
                            self.stats.faults.incr();
                            self.cores[ci].busy_until = t;
                            return RunOutcome::Fault {
                                tid,
                                page: addr.page(),
                                write,
                                no_vma: true,
                                at: t,
                            };
                        }
                    }
                }
                Op::AtomicRmw(addr, rmw) => {
                    let task = self.tasks.get_mut(&tid).expect("current exists");
                    task.state = TaskState::InSyscall;
                    self.cores[ci].busy_until = t;
                    return RunOutcome::SyncOp {
                        tid,
                        addr,
                        op: rmw,
                        at: t,
                    };
                }
                Op::Syscall(req) => {
                    t += self.params.syscall_entry();
                    let task = self.tasks.get_mut(&tid).expect("current exists");
                    task.state = TaskState::InSyscall;
                    task.stats.syscalls += 1;
                    self.stats.syscalls.incr();
                    self.cores[ci].busy_until = t;
                    return RunOutcome::Syscall { tid, req, at: t };
                }
                Op::Exit(code) => {
                    t += SimTime::from_nanos(self.params.exit_ns);
                    return self.finish_exit(ci, tid, code, t);
                }
            }
        }
    }

    fn finish_exit(&mut self, ci: usize, tid: Tid, code: i32, at: SimTime) -> RunOutcome {
        let task = self.tasks.get_mut(&tid).expect("exiting task exists");
        task.state = TaskState::Exited(code);
        task.program = None;
        self.pending_ops.remove(&tid);
        self.cores[ci].current = None;
        self.cores[ci].busy_until = at;
        self.stats.exited.incr();
        RunOutcome::Exited { tid, code, at }
    }

    /// Completes a syscall handled by the OS model: the task resumes on its
    /// core at `done` with `result`. Returns the core to kick.
    ///
    /// # Panics
    ///
    /// Panics if the task is not `InSyscall` and current on its core.
    pub fn finish_syscall(&mut self, tid: Tid, result: SysResult, done: SimTime) -> CoreId {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        assert!(
            matches!(task.state, TaskState::InSyscall),
            "{tid} not in syscall"
        );
        task.state = TaskState::Running;
        task.resume = Resume::Sys(result);
        let core = task.core;
        let cs = self.core_state_mut(core);
        debug_assert_eq!(cs.current, Some(tid), "syscalling task not current");
        cs.busy_until = cs.busy_until.max(done);
        core
    }

    /// Completes an atomic sync op: the task resumes with the old value.
    /// Returns the core to kick.
    ///
    /// # Panics
    ///
    /// Panics if the task is not `InSyscall` (the state sync ops park in).
    pub fn finish_sync_op(&mut self, tid: Tid, old: u64, done: SimTime) -> CoreId {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        assert!(
            matches!(task.state, TaskState::InSyscall),
            "{tid} not mid sync op"
        );
        task.state = TaskState::Running;
        task.resume = Resume::Value(old);
        let core = task.core;
        let cs = self.core_state_mut(core);
        cs.busy_until = cs.busy_until.max(done);
        core
    }

    /// Completes a fault resolved *synchronously on the core* (e.g. a local
    /// zero-fill): the task stays current and retries its pending op at
    /// `done`. Returns the core to kick.
    pub fn finish_fault_inline(&mut self, tid: Tid, done: SimTime) -> CoreId {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        debug_assert!(matches!(task.state, TaskState::Running));
        let core = task.core;
        let cs = self.core_state_mut(core);
        debug_assert_eq!(cs.current, Some(tid), "faulted task not current");
        cs.busy_until = cs.busy_until.max(done);
        core
    }

    /// Blocks the task that is current on `core` (after a `Syscall`,
    /// `SyncOp` or `Fault` outcome), freeing the core for other threads.
    /// Returns the core to kick so it can pick up queued work.
    ///
    /// # Panics
    ///
    /// Panics if the task is not current on its core.
    pub fn block_current(&mut self, tid: Tid, reason: BlockReason, now: SimTime) -> CoreId {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        task.state = TaskState::Blocked(reason);
        let core = task.core;
        let cs = self.core_state_mut(core);
        assert_eq!(cs.current, Some(tid), "blocking task that is not current");
        cs.current = None;
        cs.busy_until = cs.busy_until.max(now);
        core
    }

    /// Makes a blocked task runnable again; it re-enters its core's run
    /// queue at `now` (plus wakeup software cost to the waker, charged by
    /// the OS model). Returns the core to kick.
    ///
    /// # Panics
    ///
    /// Panics if the task is not blocked.
    pub fn wake(&mut self, tid: Tid, now: SimTime) -> CoreId {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        assert!(
            matches!(task.state, TaskState::Blocked(_)),
            "waking non-blocked {tid} ({:?})",
            task.state
        );
        task.state = TaskState::Ready;
        // A woken task resumes the retry of its pending op (if any) or its
        // stored resume value set by the waker.
        let core = task.core;
        let cs = self.core_state_mut(core);
        cs.runqueue.push_back(tid);
        self.wake_stamp.insert(tid, now);
        core
    }

    /// Moves the current task of `core` to the back of its run queue
    /// (`sched_yield`). Returns the core to kick.
    pub fn yield_current(&mut self, tid: Tid, now: SimTime) -> CoreId {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        assert!(
            matches!(task.state, TaskState::InSyscall),
            "yield outside syscall"
        );
        task.state = TaskState::Ready;
        task.resume = Resume::Sys(SysResult::Val(0));
        let core = task.core;
        let cs = self.core_state_mut(core);
        assert_eq!(cs.current, Some(tid));
        cs.current = None;
        cs.runqueue.push_back(tid);
        cs.busy_until = cs.busy_until.max(now);
        self.wake_stamp.insert(tid, now);
        core
    }

    /// Reassigns a (non-running) task to another core of this kernel
    /// (intra-kernel migration, as SMP `sched_setaffinity` would do).
    ///
    /// # Panics
    ///
    /// Panics if the task is currently on a core or the target is not owned.
    pub fn reassign_core(&mut self, tid: Tid, core: CoreId) {
        assert!(self.core_index.contains_key(&core), "{core} not owned");
        let task = self.tasks.get_mut(&tid).expect("task exists");
        assert!(
            !matches!(task.state, TaskState::Running),
            "cannot reassign a running task"
        );
        let old = task.core;
        task.core = core;
        // If it was queued on the old core, move the queue entry.
        let old_ci = self.core_index[&old];
        if let Some(pos) = self.cores[old_ci].runqueue.iter().position(|&t| t == tid) {
            self.cores[old_ci].runqueue.remove(pos);
            let new_ci = self.core_index[&core];
            self.cores[new_ci].runqueue.push_back(tid);
        }
    }

    /// Extracts a thread for migration: takes its program, context and
    /// pending op, and leaves a dormant shadow behind (the paper's
    /// mechanism for cheap back-migration). The task must be `InSyscall`
    /// (it called `migrate`) and current on its core.
    ///
    /// Returns `(program, context, stats, pending_op)`. The pending op (if
    /// any) travels with the thread so an aborted migration can reinstate
    /// it verbatim at the origin — same carry mechanism as
    /// [`Kernel::extract_unscheduled_for_migration`].
    #[allow(clippy::type_complexity)]
    pub fn extract_for_migration(
        &mut self,
        tid: Tid,
        to: KernelId,
        now: SimTime,
    ) -> (
        Box<dyn crate::program::Program>,
        crate::types::CpuContext,
        TaskStats,
        Option<Op>,
    ) {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        assert!(
            matches!(task.state, TaskState::InSyscall),
            "migration outside syscall"
        );
        let program = task.program.take().expect("migrating shadow");
        let ctx = task.ctx.clone();
        task.stats.migrations += 1;
        let stats = task.stats;
        task.state = TaskState::MigratedAway { to };
        let core = task.core;
        let cs = self.core_state_mut(core);
        assert_eq!(cs.current, Some(tid));
        cs.current = None;
        cs.busy_until = cs.busy_until.max(now);
        let pending = self.pending_ops.remove(&tid);
        (program, ctx, stats, pending)
    }

    /// A queued (ready, not running) thread suitable for policy-initiated
    /// migration, taken from the tail of the deepest run queue — the thread
    /// that would wait longest locally loses the least by moving.
    pub fn pick_queued_task(&self) -> Option<Tid> {
        self.cores
            .iter()
            .max_by_key(|cs| cs.runqueue.len())
            .filter(|cs| !cs.runqueue.is_empty())
            .and_then(|cs| cs.runqueue.back().copied())
    }

    /// Extracts a thread that is *not* on a core for policy-initiated
    /// migration: a queued ready thread, or one blocked on a remote
    /// operation whose completion the caller is intercepting. Unlike
    /// [`Kernel::extract_for_migration`] the thread did not ask to move, so
    /// its in-flight resume value and parked pending op travel with it and
    /// are reinstated verbatim at the destination.
    ///
    /// Returns `None` when the task is in any other state (running, in a
    /// syscall, parked on a futex word — whose wait-queue entry pins it
    /// here — or sleeping with a timer due), which callers treat as "don't
    /// migrate after all".
    #[allow(clippy::type_complexity)]
    pub fn extract_unscheduled_for_migration(
        &mut self,
        tid: Tid,
        to: KernelId,
    ) -> Option<(
        Box<dyn crate::program::Program>,
        crate::types::CpuContext,
        TaskStats,
        Resume,
        Option<Op>,
    )> {
        let task = self.tasks.get_mut(&tid)?;
        match task.state {
            TaskState::Ready => {
                let core = task.core;
                let ci = self.core_index[&core];
                let pos = self.cores[ci].runqueue.iter().position(|&t| t == tid)?;
                self.cores[ci].runqueue.remove(pos);
            }
            TaskState::Blocked(BlockReason::Remote(_)) => {}
            _ => return None,
        }
        let task = self.tasks.get_mut(&tid).expect("task exists");
        let program = task.program.take().expect("migrating shadow");
        let ctx = task.ctx.clone();
        task.stats.migrations += 1;
        let stats = task.stats;
        task.state = TaskState::MigratedAway { to };
        let resume = std::mem::replace(&mut task.resume, Resume::Start);
        let pending = self.pending_ops.remove(&tid);
        self.wake_stamp.remove(&tid);
        Some((program, ctx, stats, resume, pending))
    }

    /// Installs an arriving migrated thread. If a dormant shadow for `tid`
    /// exists (back-migration), it is revived in place — the cheap path the
    /// paper measures; otherwise a fresh task is created. The thread
    /// resumes with the migrate syscall's success result. Returns
    /// `(core_to_kick, was_back_migration)`.
    ///
    /// # Panics
    ///
    /// Panics if the group has no mm replica here yet.
    pub fn attach_migrated(
        &mut self,
        tid: Tid,
        group: GroupId,
        program: Box<dyn crate::program::Program>,
        ctx: crate::types::CpuContext,
        stats: TaskStats,
        now: SimTime,
    ) -> (CoreId, bool) {
        self.attach_migrated_with(
            tid,
            group,
            program,
            ctx,
            stats,
            Resume::Sys(SysResult::Val(0)),
            None,
            now,
        )
    }

    /// [`Kernel::attach_migrated`] with an explicit resume value and pending
    /// op: policy-initiated migrations move threads that never called
    /// `migrate`, so they resume exactly where they left off instead of
    /// with the migrate syscall's result.
    #[allow(clippy::too_many_arguments)]
    pub fn attach_migrated_with(
        &mut self,
        tid: Tid,
        group: GroupId,
        program: Box<dyn crate::program::Program>,
        ctx: crate::types::CpuContext,
        stats: TaskStats,
        resume: Resume,
        pending: Option<Op>,
        now: SimTime,
    ) -> (CoreId, bool) {
        assert!(
            self.has_mm(group),
            "migration before mm replica for {group}"
        );
        if let Some(op) = pending {
            self.pending_ops.insert(tid, op);
        }
        if let Some(task) = self.tasks.get_mut(&tid) {
            assert!(task.is_shadow(), "{tid} exists here but is not a shadow");
            task.program = Some(program);
            task.ctx = ctx;
            task.stats = stats;
            task.state = TaskState::Ready;
            task.resume = resume;
            let core = task.core;
            let cs = self.core_state_mut(core);
            cs.runqueue.push_back(tid);
            self.wake_stamp.insert(tid, now);
            (core, true)
        } else {
            let core = self.least_loaded_core();
            let mut task = Task::new(tid, group, program, core);
            task.ctx = ctx;
            task.stats = stats;
            task.resume = resume;
            self.tasks.insert(tid, task);
            let cs = self.core_state_mut(core);
            cs.runqueue.push_back(tid);
            self.wake_stamp.insert(tid, now);
            (core, false)
        }
    }

    /// Kills the thread that is current on its core (segfault policy):
    /// marks it exited with `code`, frees the core. Returns the core to
    /// kick. Counts as a segfault when `code == 139`.
    ///
    /// # Panics
    ///
    /// Panics if the task is not current on its core.
    pub fn force_exit_current(&mut self, tid: Tid, code: i32, at: SimTime) -> CoreId {
        let task = self.tasks.get_mut(&tid).expect("task exists");
        let core = task.core;
        task.state = TaskState::Exited(code);
        task.program = None;
        self.pending_ops.remove(&tid);
        let cs = self.core_state_mut(core);
        assert_eq!(cs.current, Some(tid), "force-exiting non-current task");
        cs.current = None;
        cs.busy_until = cs.busy_until.max(at);
        self.stats.exited.incr();
        if code == 139 {
            self.stats.segv.incr();
        }
        core
    }

    /// Kills a task in *any* live state (group-exit teardown): dequeues it,
    /// frees its core if running, marks it exited. Shadows and already
    /// exited tasks are left alone. Returns the core to kick when one was
    /// freed or had the task queued.
    pub fn kill_task(&mut self, tid: Tid, code: i32, at: SimTime) -> Option<CoreId> {
        let task = self.tasks.get_mut(&tid)?;
        if task.is_exited() || task.is_shadow() {
            return None;
        }
        let core = task.core;
        let was_on_core = matches!(task.state, TaskState::Running | TaskState::InSyscall);
        let was_queued = matches!(task.state, TaskState::Ready);
        task.state = TaskState::Exited(code);
        task.program = None;
        self.pending_ops.remove(&tid);
        self.wake_stamp.remove(&tid);
        self.stats.exited.incr();
        let cs = self.core_state_mut(core);
        if was_on_core {
            debug_assert_eq!(cs.current, Some(tid));
            cs.current = None;
            cs.busy_until = cs.busy_until.max(at);
            return Some(core);
        }
        if was_queued {
            if let Some(pos) = cs.runqueue.iter().position(|&t| t == tid) {
                cs.runqueue.remove(pos);
            }
            return Some(core);
        }
        // Blocked: nothing on a core to free.
        None
    }

    /// Drops every task record of a group (after group exit), returning how
    /// many records were removed. The mm replica is dropped separately via
    /// [`Kernel::drop_mm`].
    pub fn reap_group(&mut self, group: GroupId) -> usize {
        let doomed: Vec<Tid> = self
            .tasks
            .values()
            .filter(|t| t.group == group)
            .map(|t| t.tid)
            .collect();
        for tid in &doomed {
            debug_assert!(
                self.tasks[tid].is_exited() || self.tasks[tid].is_shadow(),
                "reaping live task {tid}"
            );
            self.tasks.remove(tid);
            self.pending_ops.remove(tid);
            self.wake_stamp.remove(tid);
        }
        doomed.len()
    }

    /// Live (non-exited, non-shadow) members of a group hosted here.
    pub fn group_members(&self, group: GroupId) -> Vec<Tid> {
        let mut v: Vec<Tid> = self
            .tasks
            .values()
            .filter(|t| t.group == group && !t.is_exited() && !t.is_shadow())
            .map(|t| t.tid)
            .collect();
        v.sort_unstable();
        v
    }

    /// Distinct groups with live members hosted here, ascending.
    pub fn live_groups(&self) -> Vec<GroupId> {
        let mut v: Vec<GroupId> = self
            .tasks
            .values()
            .filter(|t| !t.is_exited() && !t.is_shadow())
            .map(|t| t.group)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A queued ready thread belonging to `group`, if any (replica-aware
    /// co-placement migrates members of a specific group; contrast
    /// [`Kernel::pick_queued_task`], which picks regardless of group).
    pub fn pick_queued_task_in(&self, group: GroupId) -> Option<Tid> {
        self.cores
            .iter()
            .flat_map(|cs| cs.runqueue.iter().rev())
            .copied()
            .find(|&tid| self.tasks.get(&tid).is_some_and(|t| t.group == group))
    }

    /// Number of tasks in any non-exited, non-shadow state.
    pub fn live_tasks(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| !t.is_exited() && !t.is_shadow())
            .count()
    }

    /// Tasks that are blocked (for stuck-detection in reports).
    pub fn blocked_tasks(&self) -> Vec<Tid> {
        let mut v: Vec<_> = self
            .tasks
            .values()
            .filter(|t| matches!(t.state, TaskState::Blocked(_)))
            .map(|t| t.tid)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use popcorn_hw::{HwParams, Topology};

    #[derive(Debug)]
    struct Spin {
        chunks: u32,
    }
    impl Program for Spin {
        fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op {
            if self.chunks == 0 {
                return Op::Exit(0);
            }
            self.chunks -= 1;
            Op::Compute(2400) // 1us at 2.4GHz
        }
    }

    #[derive(Debug)]
    struct Toucher {
        addr: VAddr,
        state: u8,
    }
    impl Program for Toucher {
        fn step(&mut self, r: Resume, _e: &ProgEnv) -> Op {
            match self.state {
                0 => {
                    self.state = 1;
                    Op::Store(self.addr, 42)
                }
                1 => {
                    self.state = 2;
                    Op::Load(self.addr)
                }
                _ => {
                    if let Resume::Value(v) = r {
                        assert_eq!(v, 42);
                    } else {
                        panic!("expected load value");
                    }
                    Op::Exit(0)
                }
            }
        }
    }

    fn kernel() -> Kernel {
        let machine = Machine::new(Topology::new(1, 2), HwParams::default());
        Kernel::new(
            KernelId(0),
            vec![CoreId(0), CoreId(1)],
            OsParams::default(),
            machine,
        )
    }

    fn group(k: &mut Kernel) -> GroupId {
        let leader = k.alloc_tid();
        let g = GroupId(leader);
        k.adopt_mm(Mm::new(g));
        g
    }

    #[test]
    fn idle_core_reports_idle() {
        let mut k = kernel();
        assert!(matches!(
            k.run_core(SimTime::ZERO, CoreId(0)),
            RunOutcome::Idle
        ));
    }

    #[test]
    fn spin_program_runs_to_exit() {
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(tid, g, Box::new(Spin { chunks: 3 }), None, SimTime::ZERO);
        match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Exited { tid: t, code, at } => {
                assert_eq!(t, tid);
                assert_eq!(code, 0);
                // ctx switch + 3us compute + exit teardown.
                let expect = 1_600 + 3_000 + 6_000;
                assert_eq!(at.as_nanos(), expect);
            }
            other => panic!("expected exit, got {other:?}"),
        }
        assert!(k.task(tid).unwrap().is_exited());
        assert_eq!(k.live_tasks(), 0);
    }

    #[test]
    fn memory_ops_fault_then_complete() {
        let mut k = kernel();
        let g = group(&mut k);
        let addr = k.mm_mut(g).map_anon(4096).unwrap();
        let tid = k.alloc_tid();
        let core = k.spawn(
            tid,
            g,
            Box::new(Toucher { addr, state: 0 }),
            None,
            SimTime::ZERO,
        );
        // First store faults (absent page).
        let (page, at) = match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Fault {
                page, write, at, ..
            } => {
                assert!(write);
                (page, at)
            }
            other => panic!("expected fault, got {other:?}"),
        };
        // OS resolves with a zero-fill, task retries inline.
        k.mm_mut(g)
            .install_zero_page(page, crate::mm::PageState::Exclusive);
        let done = at + SimTime::from_nanos(1_100);
        let kick = k.finish_fault_inline(tid, done);
        assert_eq!(kick, core);
        match k.run_core(done, core) {
            RunOutcome::Exited { code, .. } => assert_eq!(code, 0),
            other => panic!("expected exit, got {other:?}"),
        }
        // The store value survived in the mm.
        assert_eq!(k.mm(g).read_word(addr), 42);
        assert_eq!(k.stats.faults.get(), 1);
    }

    #[test]
    fn no_vma_access_raises_fault_for_os_policy() {
        #[derive(Debug)]
        struct Wild;
        impl Program for Wild {
            fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op {
                Op::Store(VAddr(0xdead_beef), 1)
            }
        }
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(tid, g, Box::new(Wild), None, SimTime::ZERO);
        let at = match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Fault {
                no_vma, write, at, ..
            } => {
                assert!(no_vma);
                assert!(write);
                at
            }
            other => panic!("expected no-vma fault, got {other:?}"),
        };
        // SMP policy: kill it as a segfault.
        let kick = k.force_exit_current(tid, 139, at);
        assert_eq!(kick, core);
        assert_eq!(k.stats.segv.get(), 1);
        assert!(k.task(tid).unwrap().is_exited());
        assert!(matches!(k.run_core(at, core), RunOutcome::Idle));
    }

    #[test]
    fn kill_task_in_every_state() {
        let mut k = kernel();
        let g = group(&mut k);
        // Queued task.
        let queued = k.alloc_tid();
        k.spawn(
            queued,
            g,
            Box::new(Spin { chunks: 5 }),
            Some(CoreId(0)),
            SimTime::ZERO,
        );
        // Blocked task (spawn on other core, run it into a syscall, block).
        #[derive(Debug)]
        struct Sleepy {
            asked: bool,
        }
        impl Program for Sleepy {
            fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op {
                if !self.asked {
                    self.asked = true;
                    return Op::Syscall(SyscallReq::Nanosleep { ns: 1 });
                }
                Op::Exit(0)
            }
        }
        let blocked = k.alloc_tid();
        k.spawn(
            blocked,
            g,
            Box::new(Sleepy { asked: false }),
            Some(CoreId(1)),
            SimTime::ZERO,
        );
        let at = match k.run_core(SimTime::ZERO, CoreId(1)) {
            RunOutcome::Syscall { at, .. } => at,
            other => panic!("unexpected {other:?}"),
        };
        k.block_current(blocked, BlockReason::Sleep, at);

        assert_eq!(k.kill_task(queued, 1, at), Some(CoreId(0)));
        assert_eq!(k.kill_task(blocked, 1, at), None);
        assert!(k.task(queued).unwrap().is_exited());
        assert!(k.task(blocked).unwrap().is_exited());
        // Idempotent on exited tasks.
        assert_eq!(k.kill_task(queued, 1, at), None);
        // Unknown tid is a no-op.
        assert_eq!(k.kill_task(Tid::new(KernelId(5), 1), 1, at), None);
        assert_eq!(k.live_tasks(), 0);
    }

    #[test]
    fn reap_group_removes_exited_records() {
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(tid, g, Box::new(Spin { chunks: 0 }), None, SimTime::ZERO);
        assert_eq!(k.group_members(g), vec![tid]);
        match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Exited { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(k.group_members(g), Vec::<Tid>::new());
        assert_eq!(k.reap_group(g), 1);
        assert!(k.task(tid).is_none());
    }

    #[test]
    fn syscall_outcome_then_finish_resumes() {
        #[derive(Debug)]
        struct Getter {
            asked: bool,
        }
        impl Program for Getter {
            fn step(&mut self, r: Resume, _e: &ProgEnv) -> Op {
                if !self.asked {
                    self.asked = true;
                    return Op::Syscall(SyscallReq::GetTid);
                }
                match r {
                    Resume::Sys(SysResult::Val(v)) => Op::Exit(v as i32),
                    other => panic!("unexpected resume {other:?}"),
                }
            }
        }
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(
            tid,
            g,
            Box::new(Getter { asked: false }),
            None,
            SimTime::ZERO,
        );
        let at = match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Syscall { req, at, .. } => {
                assert!(matches!(req, SyscallReq::GetTid));
                at
            }
            other => panic!("expected syscall, got {other:?}"),
        };
        let done = at + SimTime::from_nanos(100);
        let kick = k.finish_syscall(tid, SysResult::Val(7), done);
        assert_eq!(kick, core);
        match k.run_core(done, core) {
            RunOutcome::Exited { code, .. } => assert_eq!(code, 7),
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn sync_op_outcome_then_finish_resumes_with_old_value() {
        #[derive(Debug)]
        struct Adder {
            asked: bool,
        }
        impl Program for Adder {
            fn step(&mut self, r: Resume, _e: &ProgEnv) -> Op {
                if !self.asked {
                    self.asked = true;
                    return Op::AtomicRmw(VAddr(0x1000), RmwOp::Add(1));
                }
                match r {
                    Resume::Value(old) => Op::Exit(old as i32),
                    other => panic!("unexpected resume {other:?}"),
                }
            }
        }
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(
            tid,
            g,
            Box::new(Adder { asked: false }),
            None,
            SimTime::ZERO,
        );
        let at = match k.run_core(SimTime::ZERO, core) {
            RunOutcome::SyncOp { addr, op, at, .. } => {
                assert_eq!(addr, VAddr(0x1000));
                assert!(matches!(op, RmwOp::Add(1)));
                at
            }
            other => panic!("expected sync op, got {other:?}"),
        };
        k.finish_sync_op(tid, 41, at + SimTime::from_nanos(20));
        match k.run_core(at + SimTime::from_nanos(20), core) {
            RunOutcome::Exited { code, .. } => assert_eq!(code, 41),
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn two_tasks_share_a_core_via_preemption() {
        let mut k = kernel();
        let g = group(&mut k);
        let t1 = k.alloc_tid();
        let t2 = k.alloc_tid();
        // Each spins 3 quanta worth of compute.
        let chunks = 3 * 1_000;
        k.spawn(
            t1,
            g,
            Box::new(Spin { chunks }),
            Some(CoreId(0)),
            SimTime::ZERO,
        );
        k.spawn(
            t2,
            g,
            Box::new(Spin { chunks }),
            Some(CoreId(0)),
            SimTime::ZERO,
        );
        let mut now = SimTime::ZERO;
        let mut exited = 0;
        let mut preemptions = 0;
        for _ in 0..100_000 {
            match k.run_core(now, CoreId(0)) {
                RunOutcome::Preempted { at } | RunOutcome::Busy { until: at } => {
                    preemptions += 1;
                    now = at;
                }
                RunOutcome::Exited { at, .. } => {
                    exited += 1;
                    now = at;
                    if exited == 2 {
                        break;
                    }
                }
                RunOutcome::Idle => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(exited, 2);
        assert!(preemptions >= 4, "expected interleaving, got {preemptions}");
        assert!(k.stats.ctx_switches.get() >= 4);
    }

    #[test]
    fn least_loaded_core_balances_spawns() {
        let mut k = kernel();
        let g = group(&mut k);
        let a = k.alloc_tid();
        let b = k.alloc_tid();
        let ca = k.spawn(a, g, Box::new(Spin { chunks: 1 }), None, SimTime::ZERO);
        let cb = k.spawn(b, g, Box::new(Spin { chunks: 1 }), None, SimTime::ZERO);
        assert_ne!(ca, cb, "second spawn should pick the other core");
    }

    #[test]
    fn block_and_wake_roundtrip() {
        #[derive(Debug)]
        struct Sleeper {
            asked: bool,
        }
        impl Program for Sleeper {
            fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op {
                if !self.asked {
                    self.asked = true;
                    return Op::Syscall(SyscallReq::Nanosleep { ns: 1000 });
                }
                Op::Exit(0)
            }
        }
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(
            tid,
            g,
            Box::new(Sleeper { asked: false }),
            None,
            SimTime::ZERO,
        );
        let at = match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Syscall { at, .. } => at,
            other => panic!("expected syscall, got {other:?}"),
        };
        k.block_current(tid, BlockReason::Sleep, at);
        // Core is free now: idle.
        assert!(matches!(k.run_core(at, core), RunOutcome::Idle));
        // Wake needs the blocked->ready transition plus a syscall result.
        let task = k.task_mut(tid).unwrap();
        task.resume = Resume::Sys(SysResult::Val(0));
        let kick = k.wake(tid, at + SimTime::from_micros(1));
        assert_eq!(kick, core);
        match k.run_core(at + SimTime::from_micros(1), core) {
            RunOutcome::Exited { code, .. } => assert_eq!(code, 0),
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn migration_extract_leaves_shadow_and_attach_revives() {
        #[derive(Debug)]
        struct Migrator {
            asked: bool,
        }
        impl Program for Migrator {
            fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op {
                if !self.asked {
                    self.asked = true;
                    return Op::Syscall(SyscallReq::Migrate(
                        crate::program::MigrateTarget::Kernel(KernelId(1)),
                    ));
                }
                Op::Exit(0)
            }
        }
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(
            tid,
            g,
            Box::new(Migrator { asked: false }),
            None,
            SimTime::ZERO,
        );
        let at = match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Syscall { at, .. } => at,
            other => panic!("expected syscall, got {other:?}"),
        };
        let (program, ctx, stats, pending) = k.extract_for_migration(tid, KernelId(1), at);
        assert!(pending.is_none(), "a plain migrate carries no parked op");
        assert!(k.task(tid).unwrap().is_shadow());
        assert_eq!(k.live_tasks(), 0);
        // Back-migration revives the shadow in place.
        let (kick, was_back) = k.attach_migrated(tid, g, program, ctx, stats, at);
        assert!(was_back);
        assert_eq!(kick, core);
        match k.run_core(at, core) {
            RunOutcome::Exited { code, .. } => assert_eq!(code, 0),
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn attach_without_shadow_creates_fresh_task() {
        let mut k = kernel();
        let g = group(&mut k);
        let foreign = Tid::new(KernelId(3), 9);
        let (core, was_back) = k.attach_migrated(
            foreign,
            g,
            Box::new(Spin { chunks: 0 }),
            Default::default(),
            TaskStats::default(),
            SimTime::ZERO,
        );
        assert!(!was_back);
        match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Exited { tid, .. } => assert_eq!(tid, foreign),
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn reassign_core_moves_queued_task() {
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        k.spawn(
            tid,
            g,
            Box::new(Spin { chunks: 1 }),
            Some(CoreId(0)),
            SimTime::ZERO,
        );
        k.reassign_core(tid, CoreId(1));
        assert_eq!(k.core_load(CoreId(0)), 0);
        assert_eq!(k.core_load(CoreId(1)), 1);
        assert!(matches!(
            k.run_core(SimTime::ZERO, CoreId(0)),
            RunOutcome::Idle
        ));
        assert!(matches!(
            k.run_core(SimTime::ZERO, CoreId(1)),
            RunOutcome::Exited { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_spawn_panics() {
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        k.spawn(tid, g, Box::new(Spin { chunks: 0 }), None, SimTime::ZERO);
        k.spawn(tid, g, Box::new(Spin { chunks: 0 }), None, SimTime::ZERO);
    }

    #[test]
    fn busy_core_reports_busy() {
        let mut k = kernel();
        let g = group(&mut k);
        let tid = k.alloc_tid();
        let core = k.spawn(tid, g, Box::new(Spin { chunks: 1 }), None, SimTime::ZERO);
        let at = match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Exited { at, .. } => at,
            other => panic!("unexpected {other:?}"),
        };
        // A stale event before `at` sees a busy core.
        match k.run_core(SimTime::ZERO, core) {
            RunOutcome::Busy { until } => assert_eq!(until, at),
            other => panic!("expected busy, got {other:?}"),
        }
    }
}
