//! Randomized property tests for the address-space replica: random
//! map/unmap/access sequences keep the VMA set, page residency and word
//! contents coherent. Driven by the deterministic [`SimRng`] (the build is
//! offline, so no external property-testing framework).

use std::collections::HashMap;

use popcorn_kernel::mm::{AccessCheck, Mm, PageState};
use popcorn_kernel::types::{GroupId, Tid, VAddr};
use popcorn_msg::KernelId;
use popcorn_sim::SimRng;

fn fresh() -> Mm {
    Mm::new(GroupId(Tid::new(KernelId(0), 1)))
}

/// A random address-space action.
#[derive(Debug, Clone, Copy)]
enum Action {
    Map {
        pages: u64,
    },
    UnmapNth {
        index: usize,
    },
    Write {
        region: usize,
        offset: u64,
        value: u64,
    },
    Read {
        region: usize,
        offset: u64,
    },
}

fn random_action(rng: &mut SimRng) -> Action {
    match rng.index(4) {
        0 => Action::Map {
            pages: rng.range_u64(1, 8),
        },
        1 => Action::UnmapNth {
            index: rng.index(8),
        },
        2 => Action::Write {
            region: rng.index(8),
            offset: rng.range_u64(0, 32) * 8,
            value: rng.range_u64(1, u64::MAX),
        },
        _ => Action::Read {
            region: rng.index(8),
            offset: rng.range_u64(0, 32) * 8,
        },
    }
}

/// A reference model (plain map of live regions and written words) stays
/// in agreement with the Mm through arbitrary action sequences.
#[test]
fn mm_agrees_with_reference_model() {
    let mut rng = SimRng::new(0x5EED_1001);
    for _ in 0..256 {
        let actions: Vec<Action> = {
            let len = rng.range_u64(1, 120) as usize;
            (0..len).map(|_| random_action(&mut rng)).collect()
        };
        let mut mm = fresh();
        let mut regions: Vec<(VAddr, u64)> = Vec::new(); // (start, len)
        let mut model: HashMap<u64, u64> = HashMap::new();

        for a in actions {
            match a {
                Action::Map { pages } => {
                    let len = pages * VAddr::PAGE_SIZE;
                    let addr = mm.map_anon(len).expect("address space is huge");
                    // New region must not overlap any live region.
                    for &(s, l) in &regions {
                        assert!(
                            addr.0 >= s.0 + l || addr.0 + len <= s.0,
                            "overlapping mapping"
                        );
                    }
                    regions.push((addr, len));
                }
                Action::UnmapNth { index } => {
                    if regions.is_empty() {
                        continue;
                    }
                    let (start, len) = regions.remove(index % regions.len());
                    mm.unmap(start, len).expect("exact unmap succeeds");
                    model.retain(|&a, _| !(start.0..start.0 + len).contains(&a));
                    assert!(matches!(mm.check_access(start, false), AccessCheck::NoVma));
                }
                Action::Write {
                    region,
                    offset,
                    value,
                } => {
                    if regions.is_empty() {
                        continue;
                    }
                    let (start, len) = regions[region % regions.len()];
                    let addr = VAddr(start.0 + offset % len);
                    // Fault in the page if needed (the OS model's job).
                    match mm.check_access(addr, true) {
                        AccessCheck::Ok => {}
                        AccessCheck::NeedPage { page, .. } => {
                            mm.install_zero_page(page, PageState::Exclusive);
                        }
                        AccessCheck::NoVma => panic!("write inside a live region had no vma"),
                    }
                    mm.write_word(addr, value);
                    model.insert(addr.0, value);
                }
                Action::Read { region, offset } => {
                    if regions.is_empty() {
                        continue;
                    }
                    let (start, len) = regions[region % regions.len()];
                    let addr = VAddr(start.0 + offset % len);
                    match mm.check_access(addr, false) {
                        AccessCheck::Ok => {
                            let expect = model.get(&addr.0).copied().unwrap_or(0);
                            assert_eq!(mm.read_word(addr), expect);
                        }
                        AccessCheck::NeedPage { page, .. } => {
                            mm.install_zero_page(page, PageState::ReadShared);
                            // Zero-fill: the model must not have a value
                            // here (a write would have installed the page).
                            assert_eq!(model.get(&addr.0), None);
                            assert_eq!(mm.read_word(addr), 0);
                        }
                        AccessCheck::NoVma => panic!("read inside a live region had no vma"),
                    }
                }
            }
            assert_eq!(mm.vma_count(), regions.len());
        }
    }
}

/// Page transfer round-trips preserve arbitrary word sets exactly.
#[test]
fn page_transfer_roundtrip_is_lossless() {
    let mut rng = SimRng::new(0x5EED_1002);
    for _ in 0..256 {
        let mut words: HashMap<u64, u64> = HashMap::new();
        for _ in 0..rng.range_u64(0, 64) {
            words.insert(rng.range_u64(0, 512), rng.next_u64());
        }
        let mut src = fresh();
        let addr = src.map_anon(4096).unwrap();
        src.install_zero_page(addr.page(), PageState::Exclusive);
        for (&slot, &v) in &words {
            src.write_word(addr.add(slot * 8), v);
        }
        let contents = src.evict_page(addr.page());
        let mut dst = src.replica_layout();
        dst.install_page(addr.page(), PageState::Exclusive, contents);
        for (&slot, &v) in &words {
            assert_eq!(dst.read_word(addr.add(slot * 8)), v);
        }
        // Untouched slots read zero.
        for slot in 0..512u64 {
            if !words.contains_key(&slot) {
                assert_eq!(dst.read_word(addr.add(slot * 8)), 0);
            }
        }
    }
}

/// `replica_layout` + later home mappings never collide with existing
/// regions (cursor coherence).
#[test]
fn replica_cursors_never_collide() {
    let mut rng = SimRng::new(0x5EED_1003);
    for _ in 0..256 {
        let lens: Vec<u64> = {
            let len = rng.range_u64(1, 20) as usize;
            (0..len).map(|_| rng.range_u64(1, 5)).collect()
        };
        let mut home = fresh();
        let mut all: Vec<(u64, u64)> = Vec::new();
        for (i, pages) in lens.iter().enumerate() {
            let len = pages * VAddr::PAGE_SIZE;
            let a = home.map_anon(len).unwrap();
            all.push((a.0, len));
            if i == lens.len() / 2 {
                // Mid-way, fork a replica and keep mapping at home.
                let replica = home.replica_layout();
                assert_eq!(replica.vma_count(), home.vma_count());
            }
        }
        // All regions pairwise disjoint.
        for (i, &(s1, l1)) in all.iter().enumerate() {
            for &(s2, l2) in &all[i + 1..] {
                assert!(s1 + l1 <= s2 || s2 + l2 <= s1);
            }
        }
    }
}
