//! Tests of the shared OS-model dispatch skeleton: a minimal OsMachine
//! that records which hooks fire, driven through a real simulator.

use popcorn_hw::{CoreId, HwParams, Machine, Topology};
use popcorn_kernel::kernel::Kernel;
use popcorn_kernel::mm::{Mm, PageState};
use popcorn_kernel::osmodel::{self, OsEvent, OsMachine};
use popcorn_kernel::params::OsParams;
use popcorn_kernel::program::{Op, ProgEnv, Program, Resume, RmwOp, SysResult, SyscallReq};
use popcorn_kernel::types::{GroupId, PageNo, Tid, VAddr};
use popcorn_msg::KernelId;
use popcorn_sim::{Handler, Scheduler, SimTime, Simulator};

/// A trivial OS policy: every syscall returns 1, every sync op returns 9,
/// every fault is a local zero-fill. Records hook invocations.
struct TinyOs {
    kernels: Vec<Kernel>,
    group: GroupId,
    hooks: Vec<&'static str>,
}

impl OsMachine for TinyOs {
    type Msg = ();

    fn kernels_mut(&mut self) -> &mut [Kernel] {
        &mut self.kernels
    }

    fn handle_syscall(
        &mut self,
        sched: &mut Scheduler<OsEvent<()>>,
        _ki: usize,
        core: CoreId,
        tid: Tid,
        req: SyscallReq,
        at: SimTime,
    ) {
        self.hooks.push("syscall");
        match req {
            SyscallReq::Nanosleep { ns } => {
                let c = self.kernels[0].block_current(
                    tid,
                    popcorn_kernel::task::BlockReason::Sleep,
                    at,
                );
                osmodel::ensure_core_run(sched, 0, c, at);
                sched.at(
                    at + SimTime::from_nanos(ns),
                    OsEvent::TimerWake { kernel: 0, tid },
                );
            }
            _ => {
                self.kernels[0].finish_syscall(tid, SysResult::Val(1), at);
                osmodel::ensure_core_run(sched, 0, core, at);
            }
        }
    }

    fn handle_sync_op(
        &mut self,
        sched: &mut Scheduler<OsEvent<()>>,
        _ki: usize,
        core: CoreId,
        tid: Tid,
        _addr: VAddr,
        _op: RmwOp,
        at: SimTime,
    ) {
        self.hooks.push("sync");
        self.kernels[0].finish_sync_op(tid, 9, at);
        osmodel::ensure_core_run(sched, 0, core, at);
    }

    fn handle_fault(
        &mut self,
        sched: &mut Scheduler<OsEvent<()>>,
        _ki: usize,
        core: CoreId,
        tid: Tid,
        page: PageNo,
        _write: bool,
        no_vma: bool,
        at: SimTime,
    ) {
        self.hooks.push("fault");
        assert!(!no_vma);
        self.kernels[0]
            .mm_mut(self.group)
            .install_zero_page(page, PageState::Exclusive);
        self.kernels[0].finish_fault_inline(tid, at + SimTime::from_nanos(1_000));
        osmodel::ensure_core_run(sched, 0, core, at + SimTime::from_nanos(1_000));
    }

    fn handle_exit(
        &mut self,
        _sched: &mut Scheduler<OsEvent<()>>,
        _ki: usize,
        _core: CoreId,
        _tid: Tid,
        code: i32,
        _at: SimTime,
    ) {
        assert_eq!(code, 0);
        self.hooks.push("exit");
    }

    fn handle_custom(&mut self, _sched: &mut Scheduler<OsEvent<()>>, _msg: (), _now: SimTime) {
        self.hooks.push("custom");
    }
}

impl Handler<OsEvent<()>> for TinyOs {
    fn handle(&mut self, now: SimTime, ev: OsEvent<()>, sched: &mut Scheduler<OsEvent<()>>) {
        osmodel::dispatch(self, now, ev, sched);
    }
}

/// Exercises every hook: syscall, sleep+timer, sync op, fault, exit.
#[derive(Debug)]
struct Everything {
    addr: VAddr,
    state: u8,
}

impl Program for Everything {
    fn step(&mut self, r: Resume, _e: &ProgEnv) -> Op {
        let s = self.state;
        self.state += 1;
        match s {
            0 => Op::Syscall(SyscallReq::GetPid),
            1 => {
                assert!(matches!(r, Resume::Sys(SysResult::Val(1))));
                Op::Syscall(SyscallReq::Nanosleep { ns: 5_000 })
            }
            2 => Op::AtomicRmw(VAddr(0x9000), RmwOp::Add(1)),
            3 => {
                assert!(matches!(r, Resume::Value(9)));
                Op::Store(self.addr, 77)
            }
            4 => Op::Load(self.addr),
            5 => {
                assert!(matches!(r, Resume::Value(77)));
                Op::Exit(0)
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn dispatch_routes_every_outcome_to_its_hook() {
    let machine = Machine::new(Topology::single_socket(2), HwParams::default());
    let mut kernel = Kernel::new(
        KernelId(0),
        vec![CoreId(0), CoreId(1)],
        OsParams::default(),
        machine,
    );
    let leader = kernel.alloc_tid();
    let group = GroupId(leader);
    kernel.adopt_mm(Mm::new(group));
    let mut mm_addr = kernel.mm_mut(group).map_anon(4096).unwrap();
    let core = kernel.spawn(
        leader,
        group,
        Box::new(Everything {
            addr: mm_addr,
            state: 0,
        }),
        None,
        SimTime::ZERO,
    );
    let _ = &mut mm_addr;
    let mut os = TinyOs {
        kernels: vec![kernel],
        group,
        hooks: Vec::new(),
    };
    let mut sim = Simulator::new();
    sim.schedule(SimTime::ZERO, OsEvent::CoreRun { kernel: 0, core });
    sim.run(&mut os);
    assert_eq!(
        os.hooks,
        vec!["syscall", "syscall", "sync", "fault", "exit"],
        "each mechanism outcome must reach exactly its policy hook"
    );
    assert_eq!(os.kernels[0].live_tasks(), 0);
    // The sleep's timer really advanced virtual time.
    assert!(sim.now() >= SimTime::from_nanos(5_000));
}
