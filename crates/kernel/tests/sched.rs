//! Scheduler-mechanism tests: oversubscription, quantum preemption of
//! long compute, fairness, and CPU-time accounting.

use popcorn_hw::{CoreId, HwParams, Machine, Topology};
use popcorn_kernel::kernel::{Kernel, RunOutcome};
use popcorn_kernel::mm::Mm;
use popcorn_kernel::params::OsParams;
use popcorn_kernel::program::{Op, ProgEnv, Program, Resume};
use popcorn_kernel::types::{GroupId, Tid};
use popcorn_msg::KernelId;
use popcorn_sim::SimTime;

#[derive(Debug)]
struct Spin {
    cycles_left: u64,
    chunk: u64,
}

impl Spin {
    fn new(total: u64, chunk: u64) -> Self {
        Spin {
            cycles_left: total,
            chunk,
        }
    }
}

impl Program for Spin {
    fn step(&mut self, _r: Resume, _e: &ProgEnv) -> Op {
        if self.cycles_left == 0 {
            return Op::Exit(0);
        }
        let c = self.chunk.min(self.cycles_left);
        self.cycles_left -= c;
        Op::Compute(c)
    }
}

fn one_core_kernel() -> Kernel {
    let machine = Machine::new(Topology::single_socket(1), HwParams::default());
    Kernel::new(KernelId(0), vec![CoreId(0)], OsParams::default(), machine)
}

fn group(k: &mut Kernel) -> GroupId {
    let leader = k.alloc_tid();
    let g = GroupId(leader);
    k.adopt_mm(Mm::new(g));
    g
}

/// Drives one core until all of `expect_exits` tasks exit; returns
/// `(finish_time, exit_order)`.
fn drive(k: &mut Kernel, core: CoreId, expect_exits: usize) -> (SimTime, Vec<Tid>) {
    let mut now = SimTime::ZERO;
    let mut exits = Vec::new();
    for _ in 0..1_000_000 {
        match k.run_core(now, core) {
            RunOutcome::Idle => break,
            RunOutcome::Busy { until } | RunOutcome::Preempted { at: until } => now = until,
            RunOutcome::Exited { tid, at, .. } => {
                now = at;
                exits.push(tid);
                if exits.len() == expect_exits {
                    break;
                }
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    (now, exits)
}

#[test]
fn oversubscribed_core_interleaves_all_tasks() {
    let mut k = one_core_kernel();
    let g = group(&mut k);
    // 6 threads on 1 core, each 5ms of compute in 0.5ms chunks.
    let per_task = 12_000_000u64; // 5ms at 2.4GHz
    let tids: Vec<Tid> = (0..6)
        .map(|_| {
            let t = k.alloc_tid();
            k.spawn(
                t,
                g,
                Box::new(Spin::new(per_task, 1_200_000)),
                None,
                SimTime::ZERO,
            );
            t
        })
        .collect();
    let (finish, exits) = drive(&mut k, CoreId(0), 6);
    assert_eq!(exits.len(), 6);
    // Total time ≈ 6 × 5ms of compute plus switching overhead, < 10% slack.
    let compute_ms = 6.0 * 5.0;
    let total_ms = finish.as_millis_f64();
    assert!(
        total_ms >= compute_ms && total_ms < compute_ms * 1.1,
        "total {total_ms}ms vs compute {compute_ms}ms"
    );
    // Fairness: with equal work and round-robin slices, tasks finish close
    // together — the first exit happens in the last fifth of the run.
    let first_exit_fraction = {
        // Re-run to capture the time of the first exit.
        let mut k2 = one_core_kernel();
        let g2 = group(&mut k2);
        for _ in 0..6 {
            let t = k2.alloc_tid();
            k2.spawn(
                t,
                g2,
                Box::new(Spin::new(per_task, 1_200_000)),
                None,
                SimTime::ZERO,
            );
        }
        let mut now = SimTime::ZERO;
        let mut first = None;
        for _ in 0..1_000_000 {
            match k2.run_core(now, CoreId(0)) {
                RunOutcome::Idle => break,
                RunOutcome::Busy { until } | RunOutcome::Preempted { at: until } => now = until,
                RunOutcome::Exited { at, .. } => {
                    first = Some(at);
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        first.expect("someone exits").as_millis_f64() / total_ms
    };
    assert!(
        first_exit_fraction > 0.8,
        "first exit at {first_exit_fraction:.2} of the run — unfair scheduling"
    );
    let _ = tids;
}

#[test]
fn long_compute_is_preempted_at_quantum_granularity() {
    let mut k = one_core_kernel();
    let g = group(&mut k);
    // One hog with a single 50ms compute op; one sprinter with 0.1ms.
    let hog = k.alloc_tid();
    k.spawn(
        hog,
        g,
        Box::new(Spin::new(120_000_000, 120_000_000)),
        None,
        SimTime::ZERO,
    );
    let sprinter = k.alloc_tid();
    k.spawn(
        sprinter,
        g,
        Box::new(Spin::new(240_000, 240_000)),
        None,
        SimTime::ZERO,
    );
    let (_, exits) = drive(&mut k, CoreId(0), 2);
    assert_eq!(
        exits[0], sprinter,
        "the sprinter must finish long before the 50ms hog chunk"
    );
    // And the sprinter's wall time is bounded by ~2 quanta, not 50ms.
    // (exit order already proves preemption; check accounting too)
    let hog_cpu = k.task(hog).unwrap().stats.cpu_time;
    assert_eq!(
        hog_cpu,
        SimTime::from_micros(50_000),
        "hog charged exactly its compute"
    );
}

#[test]
fn cpu_time_accounting_matches_work() {
    let mut k = one_core_kernel();
    let g = group(&mut k);
    let t = k.alloc_tid();
    let cycles = 7_200_000u64; // 3ms at 2.4GHz
    k.spawn(
        t,
        g,
        Box::new(Spin::new(cycles, 600_000)),
        None,
        SimTime::ZERO,
    );
    drive(&mut k, CoreId(0), 1);
    assert_eq!(k.task(t).unwrap().stats.cpu_time, SimTime::from_millis(3));
}

#[test]
fn sole_runner_never_pays_preemption() {
    let mut k = one_core_kernel();
    let g = group(&mut k);
    let t = k.alloc_tid();
    k.spawn(
        t,
        g,
        Box::new(Spin::new(24_000_000, 24_000_000)),
        None,
        SimTime::ZERO,
    );
    drive(&mut k, CoreId(0), 1);
    // One dispatch, zero further switches.
    assert_eq!(k.stats.ctx_switches.get(), 1);
    assert_eq!(k.task(t).unwrap().stats.ctx_switches, 1);
}

#[test]
fn work_spreads_across_cores_of_one_kernel() {
    let machine = Machine::new(Topology::single_socket(4), HwParams::default());
    let mut k = Kernel::new(
        KernelId(0),
        (0..4).map(CoreId).collect(),
        OsParams::default(),
        machine,
    );
    let g = group(&mut k);
    let mut cores_used = std::collections::HashSet::new();
    for _ in 0..8 {
        let t = k.alloc_tid();
        let c = k.spawn(t, g, Box::new(Spin::new(1_000, 1_000)), None, SimTime::ZERO);
        cores_used.insert(c);
    }
    assert_eq!(cores_used.len(), 4, "spawns must cover all cores");
    for c in 0..4 {
        assert_eq!(k.core_load(CoreId(c)), 2, "even 2-per-core split");
    }
}
