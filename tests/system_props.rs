//! Whole-system randomized tests spanning all three OS models: randomized
//! workload configurations must complete cleanly, deterministically, and
//! with behaviour equivalent across the OS designs (the single-system
//! image promise). Driven by the deterministic [`SimRng`] (the build is
//! offline, so no external property-testing framework).

use popcorn::baselines::{MultikernelOs, SmpOs};
use popcorn::core::PopcornOs;
use popcorn::hw::Topology;
use popcorn::kernel::osmodel::{OsModel, RunReport};
use popcorn::kernel::program::{Placement, Program};
use popcorn::sim::SimRng;
use popcorn::workloads::micro;
use popcorn::workloads::npb::{self, NpbConfig};
use popcorn::workloads::team::{Team, TeamConfig};

fn run_popcorn(kernels: u16, program: Box<dyn Program>) -> RunReport {
    let mut os = PopcornOs::builder()
        .topology(Topology::new(2, 4))
        .kernels(kernels)
        .build();
    os.load(program);
    os.run()
}

fn run_smp(program: Box<dyn Program>) -> RunReport {
    let mut os = SmpOs::builder().topology(Topology::new(2, 4)).build();
    os.load(program);
    os.run()
}

fn run_mk(kernels: u16, program: Box<dyn Program>) -> RunReport {
    let mut os = MultikernelOs::builder()
        .topology(Topology::new(2, 4))
        .kernels(kernels)
        .build();
    os.load(program);
    os.run()
}

/// Random team shapes complete on every OS with the exact expected thread
/// count, no segfaults and no stuck tasks.
#[test]
fn random_teams_complete_everywhere() {
    let mut rng = SimRng::new(0x5EED_6001);
    for _ in 0..24 {
        let threads = rng.range_u64(1, 10) as usize;
        let iters = rng.range_u64(1, 12) as u32;
        let pages = rng.range_u64(1, 6);
        let kernels = rng.range_u64(1, 5) as u16;
        let make = || {
            Team::boxed(
                TeamConfig::new(threads, pages * 4096),
                Box::new(move |i, shared| {
                    Box::new(micro::PageBounceWorker::new(
                        shared.data,
                        pages,
                        iters,
                        i as u64,
                    ))
                }),
            )
        };
        for r in [
            run_popcorn(kernels, make()),
            run_smp(make()),
            run_mk(kernels, make()),
        ] {
            assert!(r.is_clean(), "{} stuck: {:?}", r.os, r.stuck_tasks);
            assert_eq!(r.exited_tasks as usize, threads + 1, "{}", r.os);
            assert_eq!(r.metric("segv"), 0.0, "{}", r.os);
        }
    }
}

/// The replicated kernel is deterministic: identical configurations finish
/// at the identical virtual nanosecond.
#[test]
fn popcorn_runs_are_deterministic() {
    let mut rng = SimRng::new(0x5EED_6002);
    for _ in 0..24 {
        let threads = rng.range_u64(1, 8) as usize;
        let iters = rng.range_u64(1, 8) as u32;
        let kernels = rng.range_u64(1, 5) as u16;
        let make = || {
            Team::boxed(
                TeamConfig::new(threads, 4 * 4096),
                Box::new(move |i, shared| {
                    Box::new(micro::PageBounceWorker::new(
                        shared.data,
                        4,
                        iters,
                        i as u64,
                    ))
                }),
            )
        };
        let a = run_popcorn(kernels, make());
        let b = run_popcorn(kernels, make());
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.events, b.events);
        assert_eq!(&a.metrics, &b.metrics);
    }
}

/// NPB-class kernels complete with the right thread counts on popcorn
/// regardless of shape.
#[test]
fn npb_kernels_complete_on_popcorn() {
    let mut rng = SimRng::new(0x5EED_6003);
    for _ in 0..24 {
        let which = rng.range_u64(0, 4) as u8;
        let threads = rng.range_u64(1, 8) as usize;
        let iterations = rng.range_u64(1, 5) as u32;
        let cfg = NpbConfig {
            threads,
            iterations,
            pages_per_thread: 2,
            compute_cycles: 20_000,
            barrier_groups: 0,
        };
        let program = match which {
            0 => npb::is_benchmark(cfg),
            1 => npb::cg_benchmark(cfg),
            2 => npb::ft_benchmark(cfg),
            _ => npb::mg_benchmark(cfg),
        };
        let r = run_popcorn(4, program);
        assert!(r.is_clean(), "stuck: {:?}", r.stuck_tasks);
        assert_eq!(r.exited_tasks as usize, threads + 1);
        assert_eq!(r.metric("segv"), 0.0);
    }
}

/// Popcorn's kernel-count knob never changes *what* happens, only how long
/// it takes: thread counts and mutex totals match across 1..4 kernels
/// (SSI functional equivalence).
#[test]
fn kernel_count_is_functionally_transparent() {
    let mut rng = SimRng::new(0x5EED_6004);
    for _ in 0..24 {
        let threads = rng.range_u64(2, 8) as usize;
        let iters = rng.range_u64(1, 10) as u32;
        let make = || micro::futex_contention(threads, iters, 1_000);
        let mut exits = Vec::new();
        for kernels in [1u16, 2, 4] {
            let r = run_popcorn(kernels, make());
            assert!(r.is_clean(), "k={kernels} stuck: {:?}", r.stuck_tasks);
            exits.push(r.exited_tasks);
        }
        assert!(exits.windows(2).all(|w| w[0] == w[1]));
    }
}

/// Spawn storms with random placement complete with exact accounting on
/// the replicated kernel.
#[test]
fn spawn_storms_account_exactly() {
    let mut rng = SimRng::new(0x5EED_6005);
    for _ in 0..24 {
        let children = rng.range_u64(1, 16) as usize;
        let local = rng.chance(0.5);
        let placement = if local {
            Placement::Local
        } else {
            Placement::Auto
        };
        let r = run_popcorn(4, micro::spawn_join_storm(children, placement));
        assert!(r.is_clean());
        assert_eq!(r.exited_tasks as usize, children + 1);
        assert_eq!(r.metric("spawned") as usize, children + 1);
    }
}
