//! Cross-OS integration tests through the facade crate: the same
//! application binaries run on all three OS designs, and the designs
//! differ exactly where the paper says they differ.

use popcorn::baselines::{MultikernelOs, SmpOs};
use popcorn::core::PopcornOs;
use popcorn::hw::Topology;
use popcorn::kernel::osmodel::OsModel;
use popcorn::workloads::micro;
use popcorn::workloads::npb::{self, NpbConfig};

fn all_three() -> Vec<Box<dyn OsModel>> {
    let topo = Topology::new(2, 4);
    vec![
        Box::new(PopcornOs::builder().topology(topo).kernels(2).build()),
        Box::new(SmpOs::builder().topology(topo).build()),
        Box::new(MultikernelOs::builder().topology(topo).kernels(2).build()),
    ]
}

#[test]
fn same_binary_runs_on_all_three_oses() {
    for mut os in all_three() {
        os.load(npb::cg_benchmark(NpbConfig::class_s(6)));
        let r = os.run();
        assert!(r.is_clean(), "{} stuck: {:?}", r.os, r.stuck_tasks);
        assert_eq!(r.exited_tasks, 7, "{}", r.os);
    }
}

#[test]
fn only_popcorn_moves_threads_between_kernels() {
    // Popcorn: ping-pong completes with real migrations.
    let mut pop = PopcornOs::builder()
        .topology(Topology::new(2, 4))
        .kernels(2)
        .build();
    pop.load(Box::new(micro::MigrationPingPong::new(6)));
    let r = pop.run();
    assert!(r.is_clean());
    assert_eq!(
        r.metric("migrations_first") + r.metric("migrations_back"),
        6.0
    );
}

#[test]
fn contention_metrics_exist_only_where_the_structures_do() {
    // SMP exposes zone/mmap_sem contention; popcorn exposes protocol
    // counters; the multikernel exposes remote service counters. Absent
    // metrics read as zero.
    let topo = Topology::new(2, 4);

    let mut smp = SmpOs::builder().topology(topo).build();
    smp.load(micro::mmap_storm(6, 10, 16384));
    let rs = smp.run();
    assert!(rs.is_clean());
    assert!(rs.metric("zone_lock_acquires") > 0.0);
    assert_eq!(rs.metric("page_transfers"), 0.0);

    let mut pop = PopcornOs::builder().topology(topo).kernels(2).build();
    pop.load(micro::page_bounce(6, 4, 12));
    let rp = pop.run();
    assert!(rp.is_clean());
    assert!(rp.metric("page_transfers") > 0.0);
    assert_eq!(rp.metric("zone_lock_acquires"), 0.0);

    let mut mk = MultikernelOs::builder().topology(topo).kernels(2).build();
    mk.load(micro::futex_contention(6, 8, 1_000));
    let rm = mk.run();
    assert!(rm.is_clean());
    assert!(rm.metric("remote_service") > 0.0);
    assert_eq!(rm.metric("page_transfers"), 0.0);
}

#[test]
fn virtual_time_orders_the_designs_plausibly_under_mmap_load() {
    // One process, threads spread: SMP should beat popcorn (distribution
    // tax); multikernel (local-only memory) should beat both.
    let topo = Topology::new(2, 4);
    let run = |mut os: Box<dyn OsModel>| {
        os.load(micro::mmap_storm(6, 20, 16384));
        let r = os.run();
        assert!(r.is_clean(), "{}", r.os);
        r.finished_at
    };
    let pop = run(Box::new(
        PopcornOs::builder().topology(topo).kernels(2).build(),
    ));
    let smp = run(Box::new(SmpOs::builder().topology(topo).build()));
    let mk = run(Box::new(
        MultikernelOs::builder().topology(topo).kernels(2).build(),
    ));
    assert!(
        pop > smp,
        "cross-kernel address space should cost more than SMP here (pop {pop}, smp {smp})"
    );
    assert!(mk < pop, "local-only multikernel must be fastest (mk {mk})");
}

#[test]
fn facade_reexports_compose() {
    // The README quickstart path: everything reachable through `popcorn::`.
    use popcorn::sim::SimTime;
    let mut os = popcorn::core::PopcornOs::builder()
        .topology(popcorn::hw::Topology::new(2, 2))
        .kernels(2)
        .build();
    os.load(popcorn::workloads::micro::spawn_join_storm(
        3,
        popcorn::kernel::program::Placement::Auto,
    ));
    let r = os.run_with(SimTime::from_secs(10), 10_000_000);
    assert!(r.is_clean());
    assert_eq!(r.exited_tasks, 4);
}
