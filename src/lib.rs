#![warn(missing_docs)]
//! # Popcorn — a replicated-kernel OS reproduction, in Rust
//!
//! Facade crate for the reproduction of *"Thread Migration in a
//! Replicated-Kernel OS"* (Katz, Barbalace, Ansary, Ravichandran, Ravindran;
//! IEEE ICDCS 2015), the thread-migration paper of the Popcorn Linux
//! project.
//!
//! The original artifact is a modified Linux kernel booted as several
//! cooperating kernel instances on one multicore x86 machine. This
//! reproduction implements the same designs as deterministic simulation
//! models (see `DESIGN.md` at the repository root):
//!
//! - [`sim`] — discrete-event engine (virtual time, events, RNG, metrics);
//! - [`hw`] — the machine: topology, NUMA, lock contention, IPIs;
//! - [`msg`] — Popcorn's inter-kernel message layer;
//! - [`kernel`] — a kernel instance: tasks, scheduler, memory, syscalls;
//! - [`core`] — **the paper's contribution**: distributed thread groups,
//!   inter-kernel thread migration, address-space consistency, distributed
//!   futexes, and the assembled Popcorn OS model;
//! - [`baselines`] — the comparison systems: an SMP Linux-like shared
//!   kernel and a Barrelfish-like multikernel;
//! - [`workloads`] — user-space programs: futex-based synchronization,
//!   microbenchmarks and NPB-class kernels.
//!
//! # Quickstart
//!
//! ```
//! use popcorn::core::PopcornOs;
//! use popcorn::kernel::osmodel::OsModel;
//! use popcorn::workloads::micro::MigrationPingPong;
//! use popcorn::hw::Topology;
//!
//! // A 2-socket machine running two kernel instances (one per socket).
//! let mut os = PopcornOs::builder()
//!     .topology(Topology::new(2, 4))
//!     .kernels(2)
//!     .build();
//!
//! // One thread migrating between the kernels 8 times.
//! os.load(Box::new(MigrationPingPong::new(8)));
//! let report = os.run();
//! assert_eq!(report.exited_tasks, 1);
//! println!("total virtual time: {}", report.finished_at);
//! ```

pub use popcorn_baselines as baselines;
pub use popcorn_core as core;
pub use popcorn_hw as hw;
pub use popcorn_kernel as kernel;
pub use popcorn_msg as msg;
pub use popcorn_sim as sim;
pub use popcorn_workloads as workloads;
