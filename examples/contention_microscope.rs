//! The contention microscope: watch SMP's shared kernel data structures
//! saturate as load grows, while the replicated kernel's partitioned
//! structures stay calm — the core argument of the paper in one binary.
//!
//! ```text
//! cargo run --release --example contention_microscope
//! ```

use popcorn::baselines::SmpOs;
use popcorn::core::PopcornOs;
use popcorn::hw::Topology;
use popcorn::kernel::osmodel::OsModel;
use popcorn::kernel::program::Placement;
use popcorn::workloads::micro::MmapWorker;
use popcorn::workloads::team::{Team, TeamConfig};

fn storm(threads: usize, iters: u32) -> Box<dyn popcorn::kernel::program::Program> {
    let mut cfg = TeamConfig::new(threads, 0);
    cfg.placement = Placement::Local;
    Team::boxed(
        cfg,
        Box::new(move |_, _| Box::new(MmapWorker::new(iters, 4 * 4096))),
    )
}

fn main() {
    let topo = Topology::paper_default(); // 64 cores, 4 sockets
    let procs = 4;
    let total_iters = 2880u32;

    println!("4 processes x map/touch/unmap storms on a 64-core machine\n");
    println!(
        "{:>7} {:>12} {:>12} {:>16} {:>18}",
        "threads", "popcorn_ms", "smp_ms", "zone_lock_wait", "zone_contention"
    );

    for total in [4usize, 16, 60] {
        let per_proc = total / procs;
        let iters = total_iters / total as u32;

        let mut pop = PopcornOs::builder().topology(topo).kernels(4).build();
        for _ in 0..procs {
            pop.load(storm(per_proc, iters));
        }
        let rp = pop.run();
        assert!(rp.is_clean());

        let mut smp = SmpOs::builder().topology(topo).build();
        for _ in 0..procs {
            smp.load(storm(per_proc, iters));
        }
        let rs = smp.run();
        assert!(rs.is_clean());

        println!(
            "{:>7} {:>12.3} {:>12.3} {:>13.2} us {:>17.0}%",
            total,
            rp.finished_at.as_millis_f64(),
            rs.finished_at.as_millis_f64(),
            rs.metric("zone_lock_wait_us_mean"),
            rs.metric("zone_lock_contention") * 100.0,
        );
    }

    println!();
    println!(
        "the zone_lock columns are SMP-only: its single page allocator is \
         shared by all 64 cores and all processes. Each replicated kernel \
         owns a private allocator, so the same workload never queues there."
    );
}
