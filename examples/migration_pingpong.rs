//! Thread migration up close: watch a single thread bounce between two
//! kernel instances, with memory following it on demand.
//!
//! ```text
//! cargo run --release --example migration_pingpong
//! ```

use popcorn::core::PopcornOs;
use popcorn::hw::Topology;
use popcorn::kernel::osmodel::OsModel;
use popcorn::kernel::program::{MigrateTarget, Op, ProgEnv, Program, Resume, SyscallReq};
use popcorn::kernel::types::VAddr;
use popcorn::msg::KernelId;

/// Writes a counter into mapped memory, migrates, increments it on the
/// other side, migrates back — for `hops` rounds. The final assert shows
/// that memory is coherent across every hop.
#[derive(Debug)]
struct Wanderer {
    hops: u32,
    done: u32,
    addr: VAddr,
    state: u8,
}

impl Program for Wanderer {
    fn step(&mut self, r: Resume, env: &ProgEnv) -> Op {
        match self.state {
            0 => {
                self.state = 1;
                Op::Syscall(SyscallReq::Mmap { len: 4096 })
            }
            1 => {
                let Resume::Sys(res) = r else { panic!("mmap") };
                self.addr = VAddr(res.expect_val("mmap"));
                self.state = 2;
                Op::Store(self.addr, 0)
            }
            // Loop: load counter -> store counter+1 -> migrate.
            2 => {
                self.state = 3;
                Op::Load(self.addr)
            }
            3 => {
                let Resume::Value(v) = r else { panic!("load") };
                assert_eq!(
                    v, self.done as u64,
                    "counter must survive migration {} intact",
                    self.done
                );
                self.state = 4;
                Op::Store(self.addr, v + 1)
            }
            4 => {
                self.done += 1;
                if self.done == self.hops {
                    println!(
                        "  hop {:>2}: counter={} on {} — done",
                        self.done, self.done, env.kernel
                    );
                    return Op::Exit(0);
                }
                println!(
                    "  hop {:>2}: counter={} on {}",
                    self.done, self.done, env.kernel
                );
                self.state = 2;
                let target = if env.kernel == KernelId(0) {
                    KernelId(1)
                } else {
                    KernelId(0)
                };
                Op::Syscall(SyscallReq::Migrate(MigrateTarget::Kernel(target)))
            }
            _ => unreachable!(),
        }
    }
}

fn main() {
    let mut os = PopcornOs::builder()
        .topology(Topology::new(2, 2))
        .kernels(2)
        .build();

    os.load(Box::new(Wanderer {
        hops: 10,
        done: 0,
        addr: VAddr(0),
        state: 0,
    }));

    println!("migrating a counter-carrying thread between two kernels:");
    let report = os.run();
    assert!(report.is_clean());

    println!();
    println!(
        "first-visit migrations : {}",
        report.metric("migrations_first")
    );
    println!(
        "back-migrations        : {}",
        report.metric("migrations_back")
    );
    println!(
        "first-visit latency    : {:.1} us (fresh task creation at the target)",
        report.metric("migration_first_us_mean")
    );
    println!(
        "back-migration latency : {:.1} us (dormant shadow revived — the paper's optimization)",
        report.metric("migration_back_us_mean")
    );
    println!(
        "pages shipped          : {} (the counter page follows the thread on demand)",
        report.metric("page_transfers")
    );
}
