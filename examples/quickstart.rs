//! Quickstart: boot a replicated-kernel machine, run a multi-threaded
//! program spanning kernels, and inspect what the OS did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use popcorn::core::PopcornOs;
use popcorn::hw::Topology;
use popcorn::kernel::osmodel::OsModel;
use popcorn::workloads::micro;
use popcorn::workloads::team::{Team, TeamConfig};

fn main() {
    // A 2-socket, 8-core machine running two kernel instances (one per
    // socket) — the smallest interesting replicated-kernel setup.
    let mut os = PopcornOs::builder()
        .topology(Topology::new(2, 4))
        .kernels(2)
        .build();

    // One process: a leader that maps shared memory, spawns 6 workers
    // spread across both kernels, and joins them. The workers write
    // round-robin over shared pages, so the page-ownership protocol has
    // real work to do.
    os.load(Team::boxed(
        TeamConfig::new(6, 8 * 4096),
        Box::new(|i, shared| {
            Box::new(micro::PageBounceWorker::new(
                shared.data,
                8,
                24,
                i as u64 * 5,
            ))
        }),
    ));

    let report = os.run();
    assert!(report.is_clean(), "run did not complete cleanly");

    println!("quickstart: {} threads finished", report.exited_tasks);
    println!("virtual time     : {}", report.finished_at);
    println!("simulation events: {}", report.events);
    println!();
    println!("what the replicated-kernel OS did under the hood:");
    for key in [
        "clone_remote",
        "vma_fetches",
        "faults_local",
        "faults_remote_read",
        "faults_remote_write",
        "page_transfers",
        "invalidations",
        "futex_remote",
        "messages",
    ] {
        println!("  {key:24} = {}", report.metric(key));
    }
    println!();
    println!(
        "every value above except faults_local would be zero on the SMP \
         baseline — that traffic is the price of the single-system image."
    );
}
