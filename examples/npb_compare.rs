//! Run the same NPB-class benchmark on all three OS designs and compare —
//! a miniature of the paper's headline evaluation.
//!
//! ```text
//! cargo run --release --example npb_compare
//! ```

use popcorn::baselines::{MultikernelOs, SmpOs};
use popcorn::core::PopcornOs;
use popcorn::hw::Topology;
use popcorn::kernel::osmodel::{OsModel, RunReport};
use popcorn::workloads::npb::{self, NpbConfig};

fn run(mut os: Box<dyn OsModel>, cfg: NpbConfig) -> RunReport {
    os.load(npb::is_benchmark(cfg));
    let r = os.run();
    assert!(r.is_clean(), "{} run not clean", r.os);
    r
}

fn main() {
    let topo = Topology::new(2, 8); // 16 cores, 2 sockets
    let threads = 12;
    let cfg = NpbConfig {
        threads,
        iterations: 8,
        pages_per_thread: 8,
        compute_cycles: 2_000_000,
        barrier_groups: 0,
    };

    println!("IS-class benchmark, {threads} threads, 16-core machine\n");

    let popcorn = run(
        Box::new(PopcornOs::builder().topology(topo).kernels(2).build()),
        cfg,
    );
    let smp = run(Box::new(SmpOs::builder().topology(topo).build()), cfg);
    let mk = run(
        Box::new(MultikernelOs::builder().topology(topo).kernels(2).build()),
        cfg,
    );

    println!(
        "{:<14} {:>12} {:>10} {:>10}",
        "os", "total_ms", "faults", "ctx_sw"
    );
    for r in [&popcorn, &smp, &mk] {
        println!(
            "{:<14} {:>12.3} {:>10} {:>10}",
            r.os,
            r.finished_at.as_millis_f64(),
            r.metric("faults"),
            r.metric("ctx_switches"),
        );
    }

    println!();
    println!("popcorn-only protocol work for the same application binary:");
    println!(
        "  remote faults   : {}",
        popcorn.metric("faults_remote_read") + popcorn.metric("faults_remote_write")
    );
    println!("  page transfers  : {}", popcorn.metric("page_transfers"));
    println!("  remote futex ops: {}", popcorn.metric("futex_remote"));
    println!("  messages        : {}", popcorn.metric("messages"));
    println!();
    println!(
        "the multikernel ran the same program but its \"shared\" data is \
         private per kernel — no single-system image. The replicated \
         kernel gives SMP semantics at the cost of the traffic above."
    );
}
